"""Unit tests for attachment diffs, handover events and migration stats."""

import numpy as np
import pytest

from repro.handover.attachment import attachment_diff
from repro.handover.events import HandoverBatch, classify_batch
from repro.handover.migration import (reduction_factor, summarize_batches)


@pytest.fixture
def transition(toy_evaluator, toy_network):
    c_before = toy_network.planned_configuration()
    c_down = c_before.with_offline([1])
    return (toy_evaluator.state_of(c_before),
            toy_evaluator.state_of(c_down), c_down)


class TestAttachmentDiff:
    def test_outage_moves_target_ues(self, transition):
        before, after, _ = transition
        diff = attachment_diff(before, after)
        target_pop = before.ue_density[before.serving == 1].sum()
        moved_or_dropped = diff.handover_ues + diff.dropped_ues
        assert moved_or_dropped == pytest.approx(target_pop, rel=0.01)

    def test_sources_are_the_target(self, transition):
        before, after, _ = transition
        diff = attachment_diff(before, after)
        assert set(diff.source_sectors) <= {1}
        assert 1 not in set(diff.dest_sectors)

    def test_identity_diff_empty(self, transition):
        before, _, _ = transition
        diff = attachment_diff(before, before)
        assert diff.total_affected_ues == 0.0
        assert diff.moved_grids == 0

    def test_handovers_from(self, transition):
        before, after, _ = transition
        diff = attachment_diff(before, after)
        assert diff.handovers_from(1) == pytest.approx(diff.handover_ues)
        assert diff.handovers_from(0) == 0.0

    def test_shape_mismatch_rejected(self, transition, toy_engine):
        before, _, _ = transition
        import dataclasses
        other = dataclasses.replace(before,
                                    serving=before.serving[:2, :2],
                                    grid=before.grid)
        with pytest.raises(ValueError):
            attachment_diff(before, other)


class TestClassifyBatch:
    def test_hard_when_source_offline(self, transition):
        before, after, c_down = transition
        diff = attachment_diff(before, after)
        batch = classify_batch(0, diff, c_down)
        # Source (sector 1) is off-air in the new config: all hard.
        assert batch.hard_ues == pytest.approx(diff.handover_ues)
        assert batch.seamless_ues == 0.0
        assert batch.seamless_fraction == 0.0

    def test_seamless_when_source_online(self, toy_evaluator, toy_network):
        """A pure power shift between online sectors is seamless."""
        c = toy_network.planned_configuration()
        shifted = c.with_power(0, 41.0).with_power(1, 30.0)
        before = toy_evaluator.state_of(c)
        after = toy_evaluator.state_of(shifted)
        diff = attachment_diff(before, after)
        batch = classify_batch(0, diff, shifted)
        assert batch.hard_ues == 0.0
        if batch.total_ues > 0:
            assert batch.seamless_fraction == 1.0

    def test_empty_batch_fraction(self):
        batch = HandoverBatch(step_index=0, seamless_ues=0.0,
                              hard_ues=0.0, dropped_ues=0.0)
        assert batch.seamless_fraction == 1.0


class TestMigrationStats:
    def test_summary_aggregation(self):
        batches = [
            HandoverBatch(0, seamless_ues=10.0, hard_ues=0.0,
                          dropped_ues=1.0),
            HandoverBatch(1, seamless_ues=5.0, hard_ues=5.0,
                          dropped_ues=0.0),
        ]
        stats = summarize_batches(batches)
        assert stats.peak_simultaneous_ues == 10.0
        assert stats.total_handover_ues == 20.0
        assert stats.seamless_fraction == pytest.approx(15.0 / 20.0)
        assert stats.dropped_ues == 1.0
        assert stats.n_steps == 2

    def test_empty_schedule(self):
        stats = summarize_batches([])
        assert stats.peak_simultaneous_ues == 0.0
        assert stats.seamless_fraction == 1.0

    def test_reduction_factor(self):
        direct = summarize_batches(
            [HandoverBatch(0, seamless_ues=0.0, hard_ues=80.0,
                           dropped_ues=0.0)])
        gradual = summarize_batches(
            [HandoverBatch(i, seamless_ues=10.0, hard_ues=0.0,
                           dropped_ues=0.0) for i in range(8)])
        assert reduction_factor(direct, gradual) == 8.0

    def test_reduction_factor_degenerate(self):
        none = summarize_batches([])
        direct = summarize_batches(
            [HandoverBatch(0, seamless_ues=0.0, hard_ues=5.0,
                           dropped_ues=0.0)])
        assert reduction_factor(direct, none) == float("inf")
        assert reduction_factor(none, none) == 1.0

    def test_describe(self):
        stats = summarize_batches(
            [HandoverBatch(0, seamless_ues=10.0, hard_ues=2.0,
                           dropped_ues=0.0)])
        text = "\n".join(stats.describe())
        assert "peak simultaneous handovers" in text
        assert "seamless" in text
