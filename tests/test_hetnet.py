"""Tests for small-cell underlays and multi-carrier deployments."""

import numpy as np
import pytest

from repro.core.magus import Magus
from repro.model.engine import AnalysisEngine
from repro.model.geometry import Region
from repro.model.load import uniform_per_sector_density
from repro.model.pathloss import PathLossDatabase
from repro.model.propagation import Environment
from repro.synthetic.smallcells import add_small_cells, small_cell_antenna
from repro.upgrades.multicarrier import (Carrier, CarrierDeployment,
                                         MultiCarrierMagus)

from conftest import make_sectors
from repro.model.network import CellularNetwork


class TestSmallCellAntenna:
    def test_omnidirectional(self):
        ant = small_cell_antenna()
        gains = [float(ant.gain_db(phi, 0.0)) for phi in
                 (0.0, 90.0, 180.0, 270.0)]
        assert max(gains) - min(gains) < 1e-9


class TestAddSmallCells:
    @pytest.fixture
    def macro(self):
        return CellularNetwork(make_sectors(
            [(-1_000.0, 0.0), (0.0, 0.0), (1_000.0, 0.0)],
            azimuths=[270.0, 0.0, 90.0], power_dbm=35.0,
            max_power_dbm=41.0))

    def test_ids_preserved_and_extended(self, macro):
        region = Region.square(2_000.0)
        hetnet = add_small_cells(macro, region, n_cells=4, seed=1)
        assert hetnet.n_sectors == macro.n_sectors + 4
        for i in range(macro.n_sectors):
            assert hetnet.sector(i).x == macro.sector(i).x
        for i in range(macro.n_sectors, hetnet.n_sectors):
            assert hetnet.sector(i).power_dbm == 30.0
            assert region.contains(hetnet.sector(i).x,
                                   hetnet.sector(i).y)

    def test_own_sites(self, macro):
        hetnet = add_small_cells(macro, Region.square(2_000.0),
                                 n_cells=3, seed=2)
        small_sites = {hetnet.sector(i).site_id
                       for i in range(macro.n_sectors,
                                      hetnet.n_sectors)}
        macro_sites = {s.site_id for s in macro.sectors}
        assert small_sites.isdisjoint(macro_sites)

    def test_hotspot_placement(self, macro):
        spots = [(100.0, 100.0), (-200.0, 300.0)]
        hetnet = add_small_cells(macro, Region.square(2_000.0),
                                 n_cells=2, hotspots=spots)
        placed = [(hetnet.sector(i).x, hetnet.sector(i).y)
                  for i in range(macro.n_sectors, hetnet.n_sectors)]
        assert placed == spots
        with pytest.raises(ValueError):
            add_small_cells(macro, Region.square(2_000.0), n_cells=3,
                            hotspots=spots)

    def test_validation(self, macro):
        with pytest.raises(ValueError):
            add_small_cells(macro, Region.square(2_000.0), n_cells=0)

    def test_small_cells_add_mitigation_capacity(self, macro, toy_grid):
        """A macro outage recovers better when small cells can absorb
        users — the HetNet payoff the paper's small-cell remark implies."""
        env = Environment.flat(toy_grid)
        hetnet = add_small_cells(
            macro, Region.square(600.0), n_cells=2, seed=3,
            hotspots=[(-150.0, 250.0), (150.0, 250.0)])

        def recovery(network):
            db = PathLossDatabase.from_environment(
                network, env, shadowing_sigma_db=0.0)
            engine = AnalysisEngine(db)
            base = engine.evaluate(network.planned_configuration(),
                                   np.zeros(toy_grid.shape))
            density = uniform_per_sector_density(base, 90.0)
            magus = Magus(network, engine, density)
            return magus.plan_mitigation([1], tuning="power").recovery

        assert recovery(hetnet) >= recovery(macro) - 0.05


class TestMultiCarrier:
    @pytest.fixture
    def world(self, toy_grid):
        net = CellularNetwork(make_sectors(
            [(-1_000.0, 0.0), (0.0, 0.0), (1_000.0, 0.0)],
            azimuths=[270.0, 0.0, 90.0], power_dbm=35.0,
            max_power_dbm=41.0))
        env = Environment.flat(toy_grid)
        density = np.full(toy_grid.shape, 1.0)
        return net, env, density

    def _carriers(self):
        return [Carrier("low-band", 700.0, 10.0, ue_share=0.4),
                Carrier("mid-band", 2_635.0, 20.0, ue_share=0.6)]

    def test_share_validation(self, world):
        net, env, density = world
        with pytest.raises(ValueError, match="sum"):
            CarrierDeployment(net, env,
                              [Carrier("a", 700.0, 10.0, 0.5)],
                              density)
        with pytest.raises(ValueError, match="unique"):
            CarrierDeployment(net, env,
                              [Carrier("a", 700.0, 10.0, 0.5),
                               Carrier("a", 2_600.0, 10.0, 0.5)],
                              density)

    def test_low_band_reaches_further(self, world):
        net, env, density = world
        deployment = CarrierDeployment(net, env, self._carriers(),
                                       density)
        low = deployment.engine("low-band")
        mid = deployment.engine("mid-band")
        config = net.planned_configuration()
        low_rp = low.evaluate(config, density).rp_best_dbm
        mid_rp = mid.evaluate(config, density).rp_best_dbm
        # ~20 log10(2635/700) ~ 11.5 dB advantage for the low band.
        assert np.median(low_rp - mid_rp) > 8.0

    def test_density_split(self, world):
        net, env, density = world
        deployment = CarrierDeployment(net, env, self._carriers(),
                                       density)
        total = deployment.density("low-band") + \
            deployment.density("mid-band")
        assert np.allclose(total, density)

    def test_multicarrier_mitigation(self, world):
        net, env, density = world
        deployment = CarrierDeployment(net, env, self._carriers(),
                                       density)
        magus = MultiCarrierMagus(deployment)
        plan = magus.plan_mitigation([1], tuning="power")
        assert set(plan.per_carrier) == {"low-band", "mid-band"}
        for p in plan.per_carrier.values():
            assert p.f_after >= p.f_upgrade
        assert 0.0 <= plan.aggregate_recovery <= 1.2
        text = "\n".join(plan.describe())
        assert "aggregate recovery" in text

    def test_per_carrier_magus_accessible(self, world):
        net, env, density = world
        deployment = CarrierDeployment(net, env, self._carriers(),
                                       density)
        magus = MultiCarrierMagus(deployment)
        assert magus.magus_for("low-band").network is net
