"""Tests for the Netpbm image exporters."""

import numpy as np
import pytest

from repro.analysis.image import (write_field_pgm, write_mask_pgm,
                                  write_serving_ppm)
from repro.model.snapshot import NO_SERVICE


def _read_netpbm(path):
    data = path.read_bytes()
    magic, dims, maxval_rest = data.split(b"\n", 2)
    cols, rows = map(int, dims.split())
    maxval, raw = maxval_rest.split(b"\n", 1)
    return magic.decode(), cols, rows, int(maxval), raw


class TestFieldPgm:
    def test_header_and_size(self, tmp_path):
        field = np.linspace(0.0, 1.0, 12).reshape(3, 4)
        path = write_field_pgm("f", field, directory=tmp_path)
        magic, cols, rows, maxval, raw = _read_netpbm(path)
        assert magic == "P5"
        assert (cols, rows) == (4, 3)
        assert maxval == 255
        assert len(raw) == 12

    def test_scaling_endpoints(self, tmp_path):
        field = np.asarray([[0.0, 10.0]])
        path = write_field_pgm("g", field, directory=tmp_path)
        *_, raw = _read_netpbm(path)
        assert raw[0] == 0 and raw[1] == 255

    def test_north_up(self, tmp_path):
        # Row 0 (south) is dark, row 1 (north) bright -> file starts
        # with the bright (northern) row.
        field = np.asarray([[0.0], [1.0]])
        path = write_field_pgm("n", field, directory=tmp_path)
        *_, raw = _read_netpbm(path)
        assert raw[0] == 255 and raw[1] == 0

    def test_pinned_scale(self, tmp_path):
        path = write_field_pgm("p", np.asarray([[5.0]]), lo=0.0,
                               hi=10.0, directory=tmp_path)
        *_, raw = _read_netpbm(path)
        assert raw[0] in (127, 128)    # 0.5 x 255 rounds either way

    def test_nan_rejected_when_all(self, tmp_path):
        with pytest.raises(ValueError):
            write_field_pgm("bad", np.full((2, 2), np.nan),
                            directory=tmp_path)

    def test_bad_name(self, tmp_path):
        with pytest.raises(ValueError):
            write_field_pgm("a/b", np.zeros((2, 2)),
                            directory=tmp_path)


class TestMaskPgm:
    def test_binary_values(self, tmp_path):
        path = write_mask_pgm("m", np.asarray([[True, False]]),
                              directory=tmp_path)
        *_, raw = _read_netpbm(path)
        assert sorted(raw) == [0, 255]


class TestServingPpm:
    def test_header_and_hole_color(self, tmp_path):
        serving = np.asarray([[0, 1], [NO_SERVICE, 0]])
        path = write_serving_ppm("s", serving, directory=tmp_path)
        magic, cols, rows, maxval, raw = _read_netpbm(path)
        assert magic == "P6"
        assert (cols, rows) == (2, 2)
        assert len(raw) == 12
        # First written row is raster row 1 (north up): hole then s0.
        assert raw[0:3] == b"\x00\x00\x00"

    def test_same_sector_same_color(self, tmp_path):
        serving = np.asarray([[3, 3, 7]])
        path = write_serving_ppm("c", serving, directory=tmp_path)
        *_, raw = _read_netpbm(path)
        assert raw[0:3] == raw[3:6]
        assert raw[0:3] != raw[6:9]

    def test_colors_deterministic(self, tmp_path):
        a = write_serving_ppm("d1", np.asarray([[5]]),
                              directory=tmp_path).read_bytes()
        b = write_serving_ppm("d2", np.asarray([[5]]),
                              directory=tmp_path).read_bytes()
        assert a.split(b"\n", 2)[2] == b.split(b"\n", 2)[2]
