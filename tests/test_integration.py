"""Integration tests: the full pipeline on a real (small) study area.

These exercise the exact code paths the benches use — synthetic data
-> model -> Magus -> handover accounting — and assert the paper's
qualitative findings hold end to end.
"""

import numpy as np
import pytest

from repro.analysis.metrics import (build_convergence_timelines,
                                    improvement_ratio)
from repro.core.magus import Magus
from repro.upgrades.scenario import UpgradeScenario, select_targets


@pytest.fixture(scope="module")
def planned(small_area_module):
    area = small_area_module
    magus = Magus.from_area(area)
    targets = select_targets(area, UpgradeScenario.SINGLE_SECTOR)
    return area, magus, targets


@pytest.fixture(scope="module")
def small_area_module():
    from conftest import SMALL_DIMS
    from repro.synthetic.market import build_area
    from repro.synthetic.placement import AreaType
    return build_area(AreaType.SUBURBAN, seed=42, dims=SMALL_DIMS)


class TestEndToEndMitigation:
    def test_paper_utility_ordering(self, planned):
        """f(C_before) > f(C_after) >= f(C_upgrade) (Section 2)."""
        _, magus, targets = planned
        plan = magus.plan_mitigation(targets, tuning="joint")
        assert plan.f_before > plan.f_after
        assert plan.f_after >= plan.f_upgrade
        assert 0.0 <= plan.recovery <= 1.0

    def test_joint_beats_individual_knobs(self, planned):
        _, magus, targets = planned
        recoveries = {t: magus.plan_mitigation(targets, tuning=t).recovery
                      for t in ("power", "tilt", "joint")}
        assert recoveries["joint"] >= recoveries["power"] - 1e-9
        assert recoveries["joint"] >= recoveries["tilt"] - 1e-9

    def test_magus_no_worse_than_naive(self, planned):
        """Figure 13's headline: Algorithm 1 beats the naive sweep on
        most scenarios; on this fixed scenario it must not lose."""
        _, magus, targets = planned
        magus_rec = magus.plan_mitigation(targets, tuning="power").recovery
        naive_rec = magus.plan_mitigation(targets, tuning="naive").recovery
        assert improvement_ratio(magus_rec, naive_rec) >= 0.9

    def test_gradual_full_pipeline(self, planned):
        _, magus, targets = planned
        plan = magus.plan_mitigation(targets, tuning="joint")
        gradual = magus.gradual_schedule(plan)
        direct = magus.direct_migration_stats(plan)
        stats = gradual.stats()
        assert gradual.min_utility >= gradual.floor_utility - 1e-6
        assert stats.peak_simultaneous_ues <= \
            direct.peak_simultaneous_ues + 1e-9
        assert stats.seamless_fraction >= direct.seamless_fraction

    def test_convergence_ordering(self, planned):
        """Figure 12: proactive model >= reactive model >= feedback >=
        no tuning, pointwise over the timeline."""
        _, magus, targets = planned
        plan = magus.plan_mitigation(targets, tuning="joint")
        feedback = magus.reactive_feedback_run(targets)
        tl = build_convergence_timelines(
            plan.f_before, plan.f_upgrade, plan.f_after,
            feedback.utility_trace, total_ticks=10)
        for i in range(len(tl.times)):
            assert tl.proactive_model[i] >= tl.reactive_model[i] - 1e-9
            assert tl.reactive_model[i] >= tl.no_tuning[i] - 1e-9
            assert tl.reactive_feedback[i] >= tl.no_tuning[i] - 1e-9

    def test_feedback_slower_than_model(self, planned):
        """The reactive feedback approach needs many steps; the model
        reaches its configuration in one."""
        _, magus, targets = planned
        feedback = magus.reactive_feedback_run(targets)
        assert feedback.realistic_steps > 2 * feedback.idealized_steps \
            or feedback.idealized_steps == 0

    def test_cross_utility_recovery_table2(self, planned):
        """Optimizing for one utility recovers little of the other."""
        area, _, targets = planned
        results = {}
        for opt_name in ("performance", "coverage"):
            magus = Magus.from_area(area, utility=opt_name)
            plan = magus.plan_mitigation(targets, tuning="joint")
            for score_name in ("performance", "coverage"):
                ev = magus.evaluator
                f_b = ev.rescore(plan.c_before, score_name)
                f_u = ev.rescore(plan.c_upgrade, score_name)
                f_a = ev.rescore(plan.c_after, score_name)
                results[(opt_name, score_name)] = \
                    plan.cross_recovery(f_b, f_u, f_a)
        # Diagonal cells are proper recoveries.
        assert results[("performance", "performance")] >= 0.0
        # Cross cells cannot beat the cell optimized for that utility
        # (up to coverage-plateau ties).
        assert results[("coverage", "performance")] <= \
            results[("performance", "performance")] + 1e-9


class TestPopulationVariants:
    def test_fine_grained_density_extension(self, small_area_module):
        """The paper's future-work extension: a non-uniform population
        flows through the same pipeline."""
        from repro.model.load import density_from_field
        from repro.synthetic.users import population_field
        area = small_area_module
        field = population_field(area.grid, area.environment.clutter,
                                 seed=1)
        density = density_from_field(area.baseline, field,
                                     total_ues=area.ue_density.sum())
        magus = Magus(area.network, area.engine, density,
                      default_config=area.c_before)
        targets = select_targets(area, UpgradeScenario.SINGLE_SECTOR)
        plan = magus.plan_mitigation(targets, tuning="power")
        assert plan.f_after >= plan.f_upgrade
