"""Unit tests for joint tilt-then-power tuning."""

import pytest

from repro.core.joint import tune_joint
from repro.core.plan import Parameter
from repro.core.search import tune_power
from repro.core.tilt import tune_tilt


@pytest.fixture
def outage(toy_evaluator, toy_network):
    c_before = toy_network.planned_configuration()
    baseline = toy_evaluator.state_of(c_before)
    return c_before.with_offline([1]), baseline


class TestJointTuning:
    def test_at_least_as_good_as_tilt_alone(self, toy_evaluator,
                                            toy_network, outage):
        c_upgrade, baseline = outage
        tilt_only = tune_tilt(toy_evaluator, toy_network, c_upgrade, [1])
        joint = tune_joint(toy_evaluator, toy_network, c_upgrade,
                           baseline, [1])
        assert joint.final_utility >= tilt_only.final_utility - 1e-9

    def test_at_least_as_good_as_power_alone(self, toy_evaluator,
                                             toy_network, outage):
        """Table 1: joint always beats the individual knobs.  Power
        starts from the tilted configuration, so the joint result can
        only be >= the pure tilt pass; against pure power this holds on
        the toy world (and in the paper's results)."""
        c_upgrade, baseline = outage
        power_only = tune_power(toy_evaluator, toy_network, c_upgrade,
                                baseline, [1])
        joint = tune_joint(toy_evaluator, toy_network, c_upgrade,
                           baseline, [1])
        assert joint.final_utility >= power_only.final_utility - 1e-9

    def test_trace_is_tilt_then_power(self, toy_evaluator, toy_network,
                                      outage):
        c_upgrade, baseline = outage
        joint = tune_joint(toy_evaluator, toy_network, c_upgrade,
                           baseline, [1])
        kinds = [ch.parameter for ch in joint.changes()]
        if Parameter.POWER in kinds and Parameter.TILT in kinds:
            first_power = kinds.index(Parameter.POWER)
            assert all(k is Parameter.POWER for k in kinds[first_power:])

    def test_initial_and_final_utilities_consistent(self, toy_evaluator,
                                                    toy_network, outage):
        c_upgrade, baseline = outage
        joint = tune_joint(toy_evaluator, toy_network, c_upgrade,
                           baseline, [1])
        assert joint.initial_utility == pytest.approx(
            toy_evaluator.utility_of(c_upgrade))
        assert joint.final_utility == pytest.approx(
            toy_evaluator.utility_of(joint.final_config))
