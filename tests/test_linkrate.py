"""Unit tests for the LTE link-adaptation tables and rate mapping."""

import numpy as np
import pytest

from repro.model.linkrate import (CQI_SINR_THRESHOLDS_DB, CQI_TABLE,
                                  LinkAdaptation, PAPER_SINR_MIN_DB)


class TestCqiTable:
    def test_fifteen_entries(self):
        assert len(CQI_TABLE) == 15
        assert len(CQI_SINR_THRESHOLDS_DB) == 15

    def test_known_rows_of_ts36213(self):
        """Spot-check rows against TS 36.213 Table 7.2.3-1."""
        assert CQI_TABLE[0].modulation == "QPSK"
        assert CQI_TABLE[0].efficiency == pytest.approx(0.1523)
        assert CQI_TABLE[6].modulation == "16QAM"
        assert CQI_TABLE[6].code_rate_x1024 == 378
        assert CQI_TABLE[14].modulation == "64QAM"
        assert CQI_TABLE[14].efficiency == pytest.approx(5.5547)

    def test_efficiency_monotone(self):
        effs = [e.efficiency for e in CQI_TABLE]
        assert all(b > a for a, b in zip(effs, effs[1:]))

    def test_thresholds_monotone(self):
        t = CQI_SINR_THRESHOLDS_DB
        assert all(b > a for a, b in zip(t, t[1:]))


class TestLinkAdaptation:
    def test_prb_count_10mhz(self):
        assert LinkAdaptation(bandwidth_mhz=10.0).n_prb == 50
        assert LinkAdaptation(bandwidth_mhz=20.0).n_prb == 100

    def test_cqi_for_sinr_boundaries(self):
        link = LinkAdaptation()
        assert link.cqi_for_sinr(-10.0) == 0
        assert link.cqi_for_sinr(CQI_SINR_THRESHOLDS_DB[0]) == 1
        assert link.cqi_for_sinr(100.0) == 15

    def test_cqi_vectorized(self):
        link = LinkAdaptation()
        cqi = link.cqi_for_sinr(np.asarray([-10.0, 0.0, 12.0, 30.0]))
        assert list(cqi) == [0, 3, 10, 15]

    def test_peak_rate_scale(self):
        """10 MHz 64QAM peak should land in the tens of Mb/s."""
        link = LinkAdaptation(bandwidth_mhz=10.0)
        assert 25e6 < link.peak_rate_bps < 50e6

    def test_rate_monotone_in_sinr(self):
        link = LinkAdaptation()
        sinrs = np.linspace(-10.0, 30.0, 100)
        rates = link.max_rate_bps(sinrs)
        assert np.all(np.diff(rates) >= 0)

    def test_out_of_service_cutoff(self):
        link = LinkAdaptation(sinr_min_db=PAPER_SINR_MIN_DB)
        assert link.max_rate_bps(PAPER_SINR_MIN_DB - 0.1) == 0.0
        assert link.max_rate_bps(PAPER_SINR_MIN_DB + 0.1) > 0.0

    def test_high_custom_threshold(self):
        """The paper deliberately uses a high SINR_min for Figure 4."""
        strict = LinkAdaptation(sinr_min_db=10.0)
        assert strict.max_rate_bps(5.0) == 0.0
        assert strict.max_rate_bps(12.0) > 0.0
        # But CQI itself is unaffected (it's a service policy cutoff).
        assert strict.cqi_for_sinr(5.0) > 0

    def test_rate_for_cqi_matches_table(self):
        link = LinkAdaptation(bandwidth_mhz=10.0)
        for entry in CQI_TABLE:
            expected = (entry.efficiency
                        * link.resource_elements_per_tti / 1e-3)
            assert link.rate_for_cqi(entry.cqi) == pytest.approx(expected)

    def test_rate_for_cqi_zero_and_bounds(self):
        link = LinkAdaptation()
        assert link.rate_for_cqi(0) == 0.0
        with pytest.raises(ValueError):
            link.rate_for_cqi(16)
        with pytest.raises(ValueError):
            link.rate_for_cqi(-1)

    def test_spectral_efficiency(self):
        link = LinkAdaptation()
        assert link.spectral_efficiency(-20.0) == 0.0
        assert link.spectral_efficiency(100.0) == pytest.approx(5.5547)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            LinkAdaptation(bandwidth_mhz=0.0)

    def test_describe_rows(self):
        rows = LinkAdaptation().describe()
        assert len(rows) == 15
        assert "QPSK" in rows[0]
        assert "64QAM" in rows[-1]
