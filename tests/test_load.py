"""Unit tests for UE population rasters (uniform and fine-grained)."""

import numpy as np
import pytest

from repro.model.load import (density_from_field,
                              uniform_per_sector_density)


@pytest.fixture
def baseline(toy_engine, toy_network):
    return toy_engine.evaluate(toy_network.planned_configuration(),
                               np.zeros(toy_engine.grid.shape))


class TestUniformPerSector:
    def test_totals_match(self, baseline):
        density = uniform_per_sector_density(baseline, 120.0)
        for sid in baseline.config.active_sector_ids():
            mask = baseline.serving == sid
            if mask.any():
                assert density[mask].sum() == pytest.approx(120.0)

    def test_uniform_within_footprint(self, baseline):
        """The paper's assumption: equal UE count in every served grid."""
        density = uniform_per_sector_density(baseline, 90.0)
        for sid in baseline.config.active_sector_ids():
            vals = density[baseline.serving == sid]
            if vals.size:
                assert np.allclose(vals, vals[0])

    def test_per_sector_mapping(self, baseline):
        density = uniform_per_sector_density(
            baseline, {0: 50.0, 1: 100.0, 2: 0.0})
        assert density[baseline.serving == 0].sum() == pytest.approx(50.0)
        assert density[baseline.serving == 1].sum() == pytest.approx(100.0)
        assert density[baseline.serving == 2].sum() == 0.0

    def test_missing_sector_defaults_to_zero(self, baseline):
        density = uniform_per_sector_density(baseline, {0: 10.0})
        assert density[baseline.serving == 1].sum() == 0.0

    def test_negative_count_rejected(self, baseline):
        with pytest.raises(ValueError):
            uniform_per_sector_density(baseline, {0: -1.0})

    def test_holes_get_zero(self, baseline):
        density = uniform_per_sector_density(baseline, 10.0)
        assert np.all(density[baseline.serving < 0] == 0.0)


class TestDensityFromField:
    def test_renormalization(self, baseline):
        field = np.ones(baseline.grid.shape)
        density = density_from_field(baseline, field, total_ues=500.0)
        assert density.sum() == pytest.approx(500.0)

    def test_restricted_to_coverage(self, baseline):
        field = np.ones(baseline.grid.shape)
        density = density_from_field(baseline, field)
        assert np.all(density[~baseline.covered_mask()] == 0.0)

    def test_shape_and_sign_validation(self, baseline):
        with pytest.raises(ValueError):
            density_from_field(baseline, np.ones((2, 2)))
        with pytest.raises(ValueError):
            density_from_field(baseline,
                               -np.ones(baseline.grid.shape))

    def test_preserves_relative_weights(self, baseline):
        field = np.ones(baseline.grid.shape)
        field[0, 0] = 5.0      # a hotspot (if covered)
        density = density_from_field(baseline, field, total_ues=100.0)
        covered = baseline.covered_mask()
        if covered[0, 0]:
            others = density[covered & (field == 1.0)]
            assert density[0, 0] == pytest.approx(5.0 * others[0])
