"""Unit tests for the Magus facade."""

import pytest

from repro.core.magus import Magus, TUNING_STRATEGIES


@pytest.fixture
def magus(toy_network, toy_engine, toy_density):
    return Magus(toy_network, toy_engine, toy_density)


class TestPlanMitigation:
    @pytest.mark.parametrize("tuning", TUNING_STRATEGIES)
    def test_all_strategies_run(self, magus, tuning):
        plan = magus.plan_mitigation([1], tuning=tuning)
        assert plan.f_before > plan.f_upgrade         # outage hurts
        assert plan.f_after >= plan.f_upgrade         # tuning never hurts
        assert plan.recovery >= 0.0

    def test_ordering_joint_dominates(self, magus):
        tilt = magus.plan_mitigation([1], tuning="tilt")
        joint = magus.plan_mitigation([1], tuning="joint")
        assert joint.f_after >= tilt.f_after - 1e-9

    def test_target_off_in_outputs(self, magus):
        plan = magus.plan_mitigation([1], tuning="power")
        assert not plan.c_upgrade.is_active(1)
        assert not plan.c_after.is_active(1)
        assert plan.c_before.is_active(1)

    def test_multi_target(self, magus):
        plan = magus.plan_mitigation([0, 1], tuning="power")
        assert plan.target_sectors == (0, 1)
        assert not plan.c_after.is_active(0)
        assert not plan.c_after.is_active(1)

    def test_empty_targets_rejected(self, magus):
        with pytest.raises(ValueError):
            magus.plan_mitigation([])

    def test_already_offline_target_rejected(self, magus, toy_network):
        dark = toy_network.planned_configuration().with_offline([1])
        with pytest.raises(ValueError, match="off-air"):
            magus.plan_mitigation([1], c_before=dark)

    def test_unknown_strategy_rejected(self, magus):
        with pytest.raises(ValueError, match="unknown tuning"):
            magus.plan_mitigation([1], tuning="quantum")

    def test_utility_name_recorded(self, toy_network, toy_engine,
                                   toy_density):
        m = Magus(toy_network, toy_engine, toy_density, utility="coverage")
        plan = m.plan_mitigation([1], tuning="power")
        assert plan.utility_name == "coverage"


class TestBruteForcePlan:
    def test_brute_dominates_heuristic(self, magus):
        from repro.core.brute import BruteForceSettings
        heuristic = magus.plan_mitigation([1], tuning="power")
        brute = magus.brute_force_plan(
            [1], BruteForceSettings(unit_db=1.0, max_delta_db=3.0))
        assert brute.f_after >= \
            min(heuristic.f_after, brute.f_upgrade) - 1e-9


class TestGradualAndFeedback:
    def test_gradual_schedule_roundtrip(self, magus):
        plan = magus.plan_mitigation([1], tuning="joint")
        gradual = magus.gradual_schedule(plan)
        assert gradual.final_config == plan.c_after
        assert gradual.floor_utility == pytest.approx(plan.f_after)

    def test_direct_stats(self, magus):
        plan = magus.plan_mitigation([1], tuning="joint")
        direct = magus.direct_migration_stats(plan)
        assert direct.n_steps == 1
        assert direct.peak_simultaneous_ues >= 0

    def test_feedback_warm_start(self, magus):
        plan = magus.plan_mitigation([1], tuning="power")
        cold = magus.reactive_feedback_run([1])
        warm = magus.reactive_feedback_run([1], warm_start=plan.c_after)
        assert warm.idealized_steps <= cold.idealized_steps
