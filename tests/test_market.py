"""Tests for study-area construction (the Section-6 evaluation setup)."""

import numpy as np
import pytest

from repro.core.planning import PlanningSettings
from repro.synthetic.market import (AreaDimensions, MARKET_NAMES,
                                    build_area, build_market)
from repro.synthetic.placement import AreaType

from conftest import SMALL_DIMS


class TestBuildArea:
    def test_regions_nested(self, small_area):
        t, a = small_area.tuning_region, small_area.analysis_region
        assert a.x0 < t.x0 and a.x1 > t.x1
        assert a.y0 < t.y0 and a.y1 > t.y1

    def test_baseline_under_planned_config(self, small_area):
        assert small_area.baseline.config == small_area.planned_config
        assert small_area.c_before == small_area.planned_config

    def test_density_anchored_to_footprints(self, small_area):
        """Every served grid carries population; holes carry none."""
        baseline = small_area.baseline
        assert np.all(
            small_area.ue_density[baseline.serving < 0] == 0.0)
        assert small_area.ue_density.sum() > 0

    def test_planned_config_is_locally_optimal_for_power(self, small_area):
        """The planning pass leaves no single 1 dB power move on the
        table (the premise behind meaningful recovery ratios)."""
        from repro.core.evaluation import Evaluator
        ev = Evaluator(small_area.engine, small_area.ue_density)
        f_star = ev.utility_of(small_area.planned_config)
        for sid in range(min(small_area.network.n_sectors, 6)):
            sector = small_area.network.sector(sid)
            for delta in (1.0, -1.0):
                p = small_area.planned_config.power_dbm(sid) + delta
                if not sector.min_power_dbm <= p <= sector.max_power_dbm:
                    continue
                trial = small_area.planned_config.with_power(sid, p)
                assert ev.utility_of(trial) <= f_star + 1e-9

    def test_reproducible(self):
        a = build_area(AreaType.SUBURBAN, seed=42, dims=SMALL_DIMS)
        b = build_area(AreaType.SUBURBAN, seed=42, dims=SMALL_DIMS)
        assert a.planned_config == b.planned_config
        assert np.array_equal(a.ue_density, b.ue_density)

    def test_skip_planning(self):
        area = build_area(AreaType.SUBURBAN, seed=1, dims=SMALL_DIMS,
                          planning=PlanningSettings(max_passes=0))
        assert area.planned_config == \
            area.network.planned_configuration()

    def test_evaluate_helper(self, small_area):
        state = small_area.evaluate(small_area.c_before)
        assert state.config == small_area.c_before

    def test_interferer_stats_positive(self, small_area):
        assert small_area.interferer_stats() > 0


class TestDimensions:
    def test_density_regimes_ordered(self):
        rural = AreaDimensions.for_area(AreaType.RURAL)
        urban = AreaDimensions.for_area(AreaType.URBAN)
        assert rural.tuning_side_m > urban.tuning_side_m

    def test_custom_dims_respected(self):
        dims = AreaDimensions(tuning_side_m=1_000.0, margin_m=500.0,
                              cell_size_m=250.0)
        area = build_area(AreaType.URBAN, seed=0, dims=dims,
                          planning=PlanningSettings(max_passes=0))
        assert area.grid.cell_size == 250.0
        assert area.analysis_region.width == pytest.approx(2_000.0)


class TestMarket:
    def test_market_names(self):
        assert len(MARKET_NAMES) == 3
        with pytest.raises(ValueError):
            build_market(5)

    @pytest.mark.slow
    def test_build_market_has_three_area_types(self):
        dims = {at: SMALL_DIMS for at in AreaType}
        market = build_market(0, dims_overrides=dims)
        assert set(market.areas) == set(AreaType)
        assert market.name == MARKET_NAMES[0]
        for at in AreaType:
            assert market.area(at).area_type is at
