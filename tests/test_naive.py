"""Unit tests for the naive sequential power baseline."""

import pytest

from repro.core.naive import NaiveSettings, tune_naive
from repro.core.plan import Parameter


@pytest.fixture
def c_upgrade(toy_network):
    return toy_network.planned_configuration().with_offline([1])


class TestNaive:
    def test_improves_or_holds(self, toy_evaluator, toy_network, c_upgrade):
        result = tune_naive(toy_evaluator, toy_network, c_upgrade, [1])
        assert result.final_utility >= result.initial_utility

    def test_visits_neighbors_in_order(self, toy_evaluator, toy_network,
                                       c_upgrade):
        """The sweep never returns to an earlier neighbor."""
        result = tune_naive(toy_evaluator, toy_network, c_upgrade, [1])
        order = toy_network.neighbors_of([1], radius_m=5_000.0)
        last_rank = -1
        for change in result.changes():
            rank = order.index(change.sector_id)
            assert rank >= last_rank
            last_rank = rank

    def test_only_power_increases(self, toy_evaluator, toy_network,
                                  c_upgrade):
        result = tune_naive(toy_evaluator, toy_network, c_upgrade, [1])
        for change in result.changes():
            assert change.parameter is Parameter.POWER
            assert change.delta == pytest.approx(1.0)

    def test_step_cap(self, toy_evaluator, toy_network, c_upgrade):
        result = tune_naive(toy_evaluator, toy_network, c_upgrade, [1],
                            NaiveSettings(max_steps_per_sector=1))
        per_sector = {}
        for ch in result.changes():
            per_sector[ch.sector_id] = per_sector.get(ch.sector_id, 0) + 1
        assert all(v <= 1 for v in per_sector.values())

    def test_one_eval_per_step_plus_rejections(self, toy_evaluator,
                                               toy_network, c_upgrade):
        result = tune_naive(toy_evaluator, toy_network, c_upgrade, [1])
        assert result.total_evaluations == result.n_steps
