"""Unit tests for sectors, sites and the Configuration value type."""

import numpy as np
import pytest

from repro.model.antenna import TiltRange
from repro.model.network import CellularNetwork, Configuration, Sector

from conftest import make_sectors


class TestSector:
    def test_power_bounds_enforced(self):
        with pytest.raises(ValueError):
            Sector(sector_id=0, site_id=0, x=0, y=0, azimuth_deg=0,
                   power_dbm=50.0, max_power_dbm=46.0)

    def test_distance(self):
        a, b = make_sectors([(0.0, 0.0), (300.0, 400.0)])
        assert a.distance_to(b) == 500.0

    def test_planned_tilt_from_range(self):
        s = make_sectors([(0.0, 0.0)])[0]
        assert s.planned_tilt_deg == s.tilt_range.normal_deg


class TestCellularNetwork:
    def test_requires_ordered_ids(self):
        sectors = make_sectors([(0.0, 0.0), (100.0, 0.0)])
        bad = [sectors[1], sectors[0]]
        with pytest.raises(ValueError):
            CellularNetwork(bad)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CellularNetwork([])

    def test_site_grouping(self):
        sectors = make_sectors([(0.0, 0.0)] * 3, azimuths=[0, 120, 240],
                               site_per_sector=False)
        net = CellularNetwork(sectors)
        assert len(net.sites) == 1
        assert net.co_sited(1) == [0, 1, 2]

    def test_neighbors_sorted_by_distance(self):
        net = CellularNetwork(make_sectors(
            [(0.0, 0.0), (500.0, 0.0), (2_000.0, 0.0), (9_000.0, 0.0)]))
        nbrs = net.neighbors_of([0], radius_m=5_000.0)
        assert nbrs == [1, 2]
        assert net.neighbors_of([0], radius_m=5_000.0, max_neighbors=1) == [1]

    def test_neighbors_excludes_targets(self):
        net = CellularNetwork(make_sectors(
            [(0.0, 0.0), (500.0, 0.0), (700.0, 0.0)]))
        nbrs = net.neighbors_of([0, 1], radius_m=5_000.0)
        assert 0 not in nbrs and 1 not in nbrs
        assert nbrs == [2]

    def test_neighbors_requires_target(self):
        net = CellularNetwork(make_sectors([(0.0, 0.0)]))
        with pytest.raises(ValueError):
            net.neighbors_of([])

    def test_interferer_count(self):
        net = CellularNetwork(make_sectors(
            [(0.0, 0.0), (1_000.0, 0.0), (20_000.0, 0.0)]))
        assert net.interferer_count(0, radius_m=10_000.0) == 1


class TestConfiguration:
    @pytest.fixture
    def config(self):
        net = CellularNetwork(make_sectors(
            [(0.0, 0.0), (1_000.0, 0.0), (2_000.0, 0.0)]))
        return net.planned_configuration()

    def test_planned_values(self, config):
        assert config.n_sectors == 3
        assert np.all(config.powers() == 43.0)
        assert np.all(config.active_mask())

    def test_with_power_immutable(self, config):
        new = config.with_power(1, 45.0)
        assert new.power_dbm(1) == 45.0
        assert config.power_dbm(1) == 43.0          # original untouched
        assert new is not config

    def test_with_power_delta_clamps(self, config):
        new = config.with_power_delta(0, 10.0, max_power_dbm=46.0)
        assert new.power_dbm(0) == 46.0

    def test_with_offline_online_roundtrip(self, config):
        down = config.with_offline([1])
        assert not down.is_active(1)
        assert down.active_sector_ids() == [0, 2]
        restored = down.with_online([1])
        assert restored == config

    def test_with_tilt(self, config):
        new = config.with_tilt(2, 2.0)
        assert new.tilt_deg(2) == 2.0
        assert config.tilt_deg(2) == 4.0

    def test_diff(self, config):
        new = config.with_power(0, 44.0).with_tilt(1, 3.0)
        d = config.diff(new)
        assert set(d) == {0, 1}

    def test_diff_mismatched_sizes(self, config):
        other = Configuration(config.settings[:2])
        with pytest.raises(ValueError):
            config.diff(other)

    def test_unknown_sector_raises(self, config):
        with pytest.raises(IndexError):
            config.with_power(99, 40.0)

    def test_hashable_for_memoization(self, config):
        cache = {config: 1}
        same = config.with_power(0, 44.0).with_power(0, 43.0)
        assert cache[same] == 1


class TestConfigurationValidation:
    @pytest.fixture
    def network(self):
        return CellularNetwork(make_sectors(
            [(0.0, 0.0), (1_000.0, 0.0), (2_000.0, 0.0)]))

    @pytest.fixture
    def config(self, network):
        return network.planned_configuration()

    def test_nan_power_rejected_at_construction(self, config):
        with pytest.raises(ValueError, match=r"sectors \[1\]"):
            config.with_power(1, float("nan"))

    def test_inf_tilt_rejected_at_construction(self, config):
        with pytest.raises(ValueError, match="non-finite"):
            config.with_tilt(2, float("-inf"))

    def test_nan_azimuth_rejected_at_construction(self, config):
        with pytest.raises(ValueError, match="non-finite"):
            config.with_azimuth_offset(0, float("nan"))

    def test_validate_against_accepts_planned(self, network, config):
        config.validate_against(network)       # must not raise

    def test_validate_against_rejects_high_power(self, network, config):
        bad = config._replaced(1, power_dbm=60.0)
        with pytest.raises(ValueError, match="sector 1: power"):
            bad.validate_against(network)

    def test_validate_against_rejects_bad_tilt(self, network, config):
        bad = config._replaced(2, tilt_deg=45.0)
        with pytest.raises(ValueError, match="sector 2: tilt"):
            bad.validate_against(network)

    def test_validate_against_lists_every_offender(self, network, config):
        bad = config._replaced(0, power_dbm=60.0) \
                    ._replaced(2, tilt_deg=-30.0)
        with pytest.raises(ValueError) as err:
            bad.validate_against(network)
        assert "sector 0" in str(err.value)
        assert "sector 2" in str(err.value)

    def test_validate_against_wrong_sector_count(self, network, config):
        partial = Configuration(config.settings[:2])
        with pytest.raises(ValueError, match="covers 2 sectors"):
            partial.validate_against(network)
