"""Tests for the observability subsystem (``repro.obs``)."""

import json
import logging

import pytest

from repro.core.evaluation import Evaluator
from repro.core.search import PowerSearchSettings, tune_power
from repro.obs import (NULL_REGISTRY, Counter, Gauge, MetricsRegistry,
                       NullRegistry, RunReport, Timer, get_logger,
                       get_registry, set_registry, setup_logging, trace,
                       use_registry, verbosity_to_level)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0

    def test_cost_meter_reads_spent_since_creation(self):
        c = Counter("x")
        c.inc(10)
        meter = c.meter()
        assert meter.spent() == 0
        c.inc(4)
        assert meter.spent() == 4
        meter.restart()
        assert meter.spent() == 0

    def test_snapshot(self):
        c = Counter("x")
        c.inc(2)
        assert c.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_set_tracks_min_max(self):
        g = Gauge("g")
        assert g.value is None
        g.set(3.0)
        g.set(-1.0)
        g.set(2.0)
        snap = g.snapshot()
        assert snap["value"] == 2.0
        assert snap["min"] == -1.0
        assert snap["max"] == 3.0
        assert snap["updates"] == 3


class TestTimer:
    def test_records_durations(self):
        t = Timer("t")
        with t.time():
            pass
        assert t.count == 1
        assert t.total_ns >= 0
        assert t.min_ns is not None and t.max_ns is not None

    def test_percentiles_over_known_samples(self):
        t = Timer("t")
        for ns in [100, 200, 300, 400, 500]:
            t.observe_ns(ns)
        assert t.percentile_ns(0) == 100
        assert t.percentile_ns(50) == 300
        assert t.percentile_ns(100) == 500
        assert t.mean_ns == 300

    def test_ring_buffer_bounds_memory(self):
        t = Timer("t", ring_size=8)
        for ns in range(100):
            t.observe_ns(ns)
        assert t.count == 100
        assert len(t._ring) == 8
        # Ring holds the most recent 8 observations (92..99).
        assert t.percentile_ns(0) == 92

    def test_empty_timer_percentile_is_none(self):
        assert Timer("t").percentile_ns(50) is None
        assert Timer("t").mean_ns is None


class TestMetricsRegistry:
    def test_same_name_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.timer("b") is reg.timer("b")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.timer("a")

    def test_snapshot_lists_all_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        with reg.timer("t").time():
            pass
        snap = reg.snapshot()
        assert set(snap) == {"c", "g", "t"}
        assert snap["c"]["type"] == "counter"
        assert snap["g"]["type"] == "gauge"
        assert snap["t"]["type"] == "timer"

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {}


class TestNullRegistry:
    def test_noop_registry_adds_no_keys(self):
        reg = NullRegistry()
        reg.counter("a").inc(100)
        reg.gauge("b").set(1.0)
        with reg.timer("c").time():
            pass
        assert reg.snapshot() == {}
        assert not reg.enabled

    def test_shared_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.timer("a") is reg.timer("b")

    def test_null_counter_never_counts(self):
        reg = NullRegistry()
        c = reg.counter("a")
        c.inc(5)
        assert c.value == 0


class TestActiveRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_set_and_restore(self):
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_use_registry_restores_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(reg):
                assert get_registry() is reg
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY


class TestTracer:
    def test_spans_noop_when_disabled(self):
        # Neither tracing nor a registry: the span must be a no-op.
        with trace.span("outer"):
            assert trace.current() is None
        assert trace.drain() == []

    def test_span_nesting(self):
        trace.enable()
        try:
            with trace.span("outer") as outer:
                with trace.span("inner") as inner:
                    assert trace.current() is inner
                assert trace.current() is outer
            roots = trace.drain()
        finally:
            trace.disable()
        assert [s.name for s in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert roots[0].duration_ns >= roots[0].children[0].duration_ns

    def test_span_exception_safety(self):
        trace.enable()
        try:
            with pytest.raises(ValueError):
                with trace.span("outer"):
                    with trace.span("failing"):
                        raise ValueError("bad")
            assert trace.current() is None       # stack fully unwound
            roots = trace.drain()
        finally:
            trace.disable()
        outer = roots[0]
        failing = outer.children[0]
        assert failing.status == "error"
        assert "ValueError" in failing.error
        assert outer.status == "error"

    def test_span_records_registry_timer(self):
        with use_registry(MetricsRegistry()) as reg:
            with trace.span("magus.test_phase"):
                pass
            snap = reg.snapshot()
        assert snap["span.magus.test_phase"]["count"] == 1

    def test_span_tags_and_dict(self):
        trace.enable()
        try:
            with trace.span("tagged", knob="power", n=3):
                pass
            span = trace.drain()[0]
        finally:
            trace.disable()
        d = span.to_dict()
        assert d["tags"] == {"knob": "power", "n": 3}
        assert d["status"] == "ok"


class TestRunReport:
    def _sample(self):
        return RunReport(
            command="mitigate",
            meta={"utility": "performance"},
            phases=[{"name": "magus.tilt_pass", "calls": 1,
                     "wall_time_s": 0.5, "mean_s": 0.5}],
            iterations=[{"step": 1, "sector": 2, "knob": "power",
                         "old_value": 30.0, "new_value": 31.0,
                         "utility": 10.5, "delta_utility": 0.5,
                         "evaluations": 4}],
            utility_trajectory=[10.0, 10.5],
            total_model_evaluations=4,
            metrics={"magus.engine.evaluations":
                     {"type": "counter", "value": 12}})

    def test_json_round_trip(self):
        report = self._sample()
        text = report.to_json()
        loaded = RunReport.from_json(text)
        assert loaded.to_dict() == report.to_dict()

    def test_from_json_rejects_unknown_schema(self):
        bad = json.dumps({"schema": "nope/9"})
        with pytest.raises(ValueError):
            RunReport.from_json(bad)

    def test_write_and_read_file(self, tmp_path):
        path = tmp_path / "run.json"
        report = self._sample()
        report.write(str(path))
        loaded = RunReport.from_json(path.read_text())
        assert loaded.total_model_evaluations == 4

    def test_to_table_mentions_phases_and_totals(self):
        table = self._sample().to_table()
        assert "magus.tilt_pass" in table
        assert "4 model evaluations" in table

    def test_from_mitigation_agrees_with_tuning_trace(
            self, toy_evaluator, toy_network):
        with use_registry(MetricsRegistry()) as reg:
            result_tuning = tune_power(
                toy_evaluator, toy_network,
                toy_evaluator.state_of(
                    toy_network.planned_configuration()).config.with_offline(
                        (0,)),
                toy_evaluator.state_of(
                    toy_network.planned_configuration()),
                (0,), PowerSearchSettings(max_iterations=5))
            from repro.core.plan import MitigationResult
            plan = MitigationResult(
                target_sectors=(0,),
                c_before=toy_network.planned_configuration(),
                c_upgrade=result_tuning.initial_config,
                c_after=result_tuning.final_config,
                f_before=1.0, f_upgrade=0.5,
                f_after=result_tuning.final_utility,
                tuning=result_tuning)
            report = RunReport.from_mitigation(plan, registry=reg)
        assert (report.total_model_evaluations
                == result_tuning.total_evaluations)
        assert report.utility_trajectory == result_tuning.utility_trace()
        assert len(report.iterations) == result_tuning.n_steps
        # The power pass span landed in the phases table.
        assert any(p["name"] == "magus.power_pass"
                   for p in report.phases)


class TestInstrumentationIntegration:
    def test_evaluator_mirror_counters(self, toy_evaluator, toy_network):
        config = toy_network.planned_configuration()
        with use_registry(MetricsRegistry()) as reg:
            toy_evaluator.utility_of(config)
            toy_evaluator.utility_of(config)      # cache hit
            snap = reg.snapshot()
        assert snap["magus.evaluator.model_evaluations"]["value"] == 1
        assert snap["magus.evaluator.cache_hits"]["value"] == 1
        assert snap["magus.engine.evaluations"]["value"] == 1
        assert snap["magus.engine.evaluate"]["count"] == 1

    def test_cost_meter_matches_counter_attribute(self, toy_evaluator,
                                                  toy_network):
        config = toy_network.planned_configuration()
        before = toy_evaluator.model_evaluations
        meter = toy_evaluator.cost_meter()
        toy_evaluator.utility_of(config.with_power(0, 31.0))
        assert meter.spent() == toy_evaluator.model_evaluations - before

    def test_disabled_run_leaves_registry_empty(self, toy_evaluator,
                                                toy_network):
        config = toy_network.planned_configuration()
        toy_evaluator.utility_of(config.with_power(0, 33.0))
        assert get_registry().snapshot() == {}


class TestLogging:
    def test_verbosity_mapping(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(9) == logging.DEBUG

    def test_setup_logging_idempotent(self):
        logger = setup_logging(logging.INFO)
        n_handlers = len(logger.handlers)
        again = setup_logging(logging.DEBUG)
        assert again is logger
        assert len(logger.handlers) == n_handlers
        assert logger.level == logging.DEBUG

    def test_setup_logging_level_name(self):
        logger = setup_logging("warning")
        assert logger.level == logging.WARNING

    def test_setup_logging_rejects_bad_level(self):
        with pytest.raises(ValueError):
            setup_logging("not-a-level")

    def test_search_emits_iteration_lines(self, toy_evaluator,
                                          toy_network, caplog):
        config = toy_network.planned_configuration().with_offline((0,))
        baseline = toy_evaluator.state_of(
            toy_network.planned_configuration())
        logger = get_logger("core.search")
        logger.propagate = True        # let caplog's root handler see it
        try:
            with caplog.at_level(logging.INFO, logger=logger.name):
                tune_power(toy_evaluator, toy_network, config, baseline,
                           (0,), PowerSearchSettings(max_iterations=5))
        finally:
            logger.propagate = False
        accepted = [r for r in caplog.records
                    if "delta_utility=" in r.getMessage()]
        if accepted:                   # toy world may converge instantly
            message = accepted[0].getMessage()
            assert "sector=" in message
            assert "knob=" in message
            assert "evals=" in message


class TestEngineCounterCompatibility:
    def test_evaluations_property_counts(self, toy_engine, toy_network,
                                         toy_density):
        before = toy_engine.evaluations
        toy_engine.evaluate(toy_network.planned_configuration(),
                            toy_density)
        assert toy_engine.evaluations == before + 1

    def test_evaluations_setter_resets(self, toy_engine, toy_network,
                                       toy_density):
        toy_engine.evaluate(toy_network.planned_configuration(),
                            toy_density)
        toy_engine.evaluations = 0
        assert toy_engine.evaluations == 0
