"""The multi-core evaluation subsystem (PR 5).

Covers the three layers of :mod:`repro.parallel` plus the sites that
own pools: the shared-memory plane store (packing, LRU eviction,
unlink-on-close), the :class:`EvaluationService` (threshold and
staleness fallbacks, counters, worker lifecycle — no orphans after
``close()``), and the planner-level scenario sweep.  Bitwise parity of
the parallel *strategy* lives in ``test_delta_engine.py``; here the
parity checks target the service API directly.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.utility import PerformanceUtility
from repro.obs import MetricsRegistry, set_registry
from repro.parallel import (DEFAULT_MIN_PARALLEL_BATCH, EvaluationService,
                            SharedPlaneStore, resolve_workers)
from repro.parallel.shm import (attach_array, attach_block,
                                attach_handle_block)

_UTILITY = PerformanceUtility()


def _ladder(network, config, sectors, deltas):
    out = []
    for sector in sectors:
        spec = network.sector(sector)
        for delta in deltas:
            power = float(np.clip(config.power_dbm(sector) + delta,
                                  spec.min_power_dbm,
                                  spec.max_power_dbm))
            out.append(config.with_power(sector, power))
    return out


def _incumbent_of(engine, config, density):
    _, incumbent = engine.evaluate_with_incumbent(config, density)
    return incumbent


@pytest.fixture
def registry():
    previous = set_registry(MetricsRegistry())
    try:
        yield multiprocessing  # placeholder; tests read via get_registry
    finally:
        set_registry(previous)


# ----------------------------------------------------------------------
class TestSharedPlaneStore:
    def test_roundtrip_and_alignment(self):
        arrays = {"a": np.arange(12, dtype=np.float64).reshape(3, 4),
                  "b": np.arange(5, dtype=np.int64),
                  "c": np.array([[1.5]])}
        with SharedPlaneStore() as store:
            handles = store.export("k", arrays)
            assert set(handles) == set(arrays)
            block = attach_block(handles["a"].block)
            try:
                for name, handle in handles.items():
                    assert handle.offset % 64 == 0
                    view = attach_array(handle, block)
                    assert np.array_equal(view, arrays[name])
                    assert not view.flags.writeable
            finally:
                block.close()

    def test_export_is_cached_and_lru_bounded(self):
        with SharedPlaneStore(capacity=2) as store:
            first = store.export("k1", {"x": np.ones(4)})
            assert store.export("k1", {"x": np.ones(4)}) is first
            store.export("k2", {"x": np.ones(4)})
            store.export("k3", {"x": np.ones(4)})
            assert len(store) == 2
            assert "k1" not in store and "k3" in store

    def test_close_unlinks_blocks(self):
        store = SharedPlaneStore()
        handles = store.export("k", {"x": np.ones(8)})
        name = handles["x"].block
        store.close()
        assert store.exported_bytes == 0
        with pytest.raises(FileNotFoundError):
            attach_block(name)
        store.close()               # idempotent

    def test_spill_threshold_none_never_spills(self):
        with SharedPlaneStore() as store:
            handles = store.export("k", {"x": np.ones(8)})
            assert handles["x"].path is None

    def test_spill_export_roundtrip(self):
        """``spill_bytes=0`` routes exports to mmap-able temp files;
        workers attach through the same handle API and see the same
        read-only arrays."""
        arrays = {"a": np.arange(12, dtype=np.float32).reshape(3, 4),
                  "b": np.arange(5, dtype=np.int64)}
        with SharedPlaneStore(spill_bytes=0) as store:
            handles = store.export("k", arrays)
            path = handles["a"].path
            assert path is not None and os.path.exists(path)
            assert handles["a"].block == path    # doubles as cache key
            block = attach_handle_block(handles["a"])
            try:
                for name, handle in handles.items():
                    view = attach_array(handle, block)
                    assert np.array_equal(view, arrays[name])
                    assert not view.flags.writeable
            finally:
                block.close()
        assert not os.path.exists(path)          # close() unlinked it

    def test_spill_eviction_unlinks_file(self):
        with SharedPlaneStore(capacity=1, spill_bytes=0) as store:
            first = store.export("k1", {"x": np.ones(4)})
            store.export("k2", {"x": np.ones(4)})
            assert "k1" not in store
            assert not os.path.exists(first["x"].path)


# ----------------------------------------------------------------------
class TestResolveWorkers:
    def test_default_is_positive(self):
        assert resolve_workers(None) >= 1

    def test_explicit_passthrough(self):
        assert resolve_workers(5) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


# ----------------------------------------------------------------------
class TestEvaluationService:
    def _service(self, engine, density, workers=2, **kwargs):
        kwargs.setdefault("min_parallel_batch", 2)
        return EvaluationService(engine, density, _UTILITY, workers,
                                 **kwargs)

    def test_score_batch_matches_serial(self, toy_network, toy_engine,
                                        toy_density):
        base = toy_network.planned_configuration()
        candidates = _ladder(toy_network, base, (0, 1, 2),
                             (-2.0, -1.0, 1.0, 2.0))
        incumbent = _incumbent_of(toy_engine, base, toy_density)
        serial = Evaluator(toy_engine, toy_density, _UTILITY,
                           strategy="delta")
        serial.utility_of(base)
        want = serial.score_candidates(candidates)
        with self._service(toy_engine, toy_density) as service:
            got = service.score_batch(incumbent, candidates)
        assert got == want

    def test_close_leaves_no_orphans(self, toy_network, toy_engine,
                                     toy_density):
        base = toy_network.planned_configuration()
        incumbent = _incumbent_of(toy_engine, base, toy_density)
        service = self._service(toy_engine, toy_density)
        assert service.score_batch(
            incumbent, _ladder(toy_network, base, (0, 1), (-1.0, 1.0))
        ) is not None
        assert service.running
        service.close()
        assert not service.running
        assert multiprocessing.active_children() == []
        service.close()             # idempotent

    def test_small_batch_falls_back(self, toy_network, toy_engine,
                                    toy_density):
        base = toy_network.planned_configuration()
        incumbent = _incumbent_of(toy_engine, base, toy_density)
        with self._service(
                toy_engine, toy_density,
                min_parallel_batch=DEFAULT_MIN_PARALLEL_BATCH) as service:
            few = _ladder(toy_network, base, (0,), (-1.0, 1.0))
            assert service.score_batch(incumbent, few) is None
            assert not service.running   # never even forked

    def test_single_worker_falls_back(self, toy_network, toy_engine,
                                      toy_density):
        base = toy_network.planned_configuration()
        incumbent = _incumbent_of(toy_engine, base, toy_density)
        with self._service(toy_engine, toy_density,
                           workers=1) as service:
            many = _ladder(toy_network, base, (0, 1, 2),
                           (-2.0, -1.0, 1.0, 2.0))
            assert service.score_batch(incumbent, many) is None

    def test_stale_epoch_falls_back_then_recovers(
            self, toy_network, toy_engine, toy_density):
        base = toy_network.planned_configuration()
        incumbent = _incumbent_of(toy_engine, base, toy_density)
        many = _ladder(toy_network, base, (0, 1, 2),
                       (-2.0, -1.0, 1.0, 2.0))
        with self._service(toy_engine, toy_density) as service:
            assert service.score_batch(incumbent, many) is not None
            toy_engine.pathloss.invalidate_caches()
            # The old incumbent's planes may be stale: refuse it.
            assert service.score_batch(incumbent, many) is None
            # A fresh incumbent re-forks the pool and works again.
            fresh = _incumbent_of(toy_engine, base, toy_density)
            serial = Evaluator(toy_engine, toy_density, _UTILITY,
                               strategy="delta")
            serial.utility_of(base)
            assert (service.score_batch(fresh, many)
                    == serial.score_candidates(many))

    def test_multi_sector_candidate_falls_back(
            self, toy_network, toy_engine, toy_density):
        base = toy_network.planned_configuration()
        incumbent = _incumbent_of(toy_engine, base, toy_density)
        two_sector = base.with_power(0, 36.0).with_power(1, 36.0)
        batch = _ladder(toy_network, base, (0, 1, 2),
                        (-1.0, 1.0)) + [two_sector]
        with self._service(toy_engine, toy_density) as service:
            assert service.score_batch(incumbent, batch) is None

    def test_counters(self, registry, toy_network, toy_engine,
                      toy_density):
        from repro.obs import get_registry
        base = toy_network.planned_configuration()
        incumbent = _incumbent_of(toy_engine, base, toy_density)
        many = _ladder(toy_network, base, (0, 1, 2),
                       (-2.0, -1.0, 1.0, 2.0))
        with self._service(toy_engine, toy_density) as service:
            assert service.score_batch(incumbent, many) is not None
            resident = get_registry().gauge(
                "magus.parallel.shm_bytes").value
            assert resident and resident > 0
        reg = get_registry()
        assert reg.counter("magus.parallel.tasks").value > 0
        assert reg.counter("magus.parallel.worker_busy_ns").value > 0
        assert reg.counter("magus.engine.batched_candidates").value \
            == len(many)
        # S1: shm accounting balances — everything allocated was
        # released on close and the resident gauge is back to zero.
        allocated = reg.counter("magus.parallel.shm_allocated_bytes").value
        released = reg.counter("magus.parallel.shm_released_bytes").value
        assert allocated > 0
        assert released == allocated
        assert reg.gauge("magus.parallel.shm_bytes").value == 0

    def test_evaluator_close_shuts_pool(self, toy_network, toy_engine,
                                        toy_density):
        base = toy_network.planned_configuration()
        evaluator = Evaluator(toy_engine, toy_density, _UTILITY,
                              strategy="parallel", workers=2,
                              min_parallel_batch=2)
        evaluator.utility_of(base)
        evaluator.score_candidates(_ladder(toy_network, base, (0, 1, 2),
                                           (-1.0, 1.0, 2.0)))
        evaluator.close()
        assert multiprocessing.active_children() == []

    def test_executor_fallback_closes_pool(self, toy_network,
                                           toy_engine, toy_density):
        """The exit-code-3 abort path may not orphan workers."""
        from repro.faults import (FaultInjector, FaultPlan, PushFaults,
                                  ResilientExecutor, RetryPolicy)
        from repro.core.magus import Magus
        plan_spec = FaultPlan(push=PushFaults(
            fail_steps=tuple(range(64)), fail_attempts=99))
        with Magus(toy_network, toy_engine, toy_density,
                   evaluation_strategy="parallel", workers=2) as magus:
            magus.evaluator._service.min_parallel_batch = 2
            plan = magus.plan_mitigation([1], tuning="power")
            gradual = magus.gradual_schedule(plan)
            executor = ResilientExecutor(
                magus.evaluator, network=magus.network,
                injector=FaultInjector(plan_spec),
                policy=RetryPolicy(max_attempts=2, base_delay_s=0.0))
            rollout = executor.execute(gradual)
            assert not rollout.completed
            # _fall_back closed the evaluator's pool on abort.
            assert not magus.evaluator._service.running
            assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
class TestLRUCacheConcurrency:
    def test_concurrent_gain_tensor_mw(self, toy_network, toy_pathloss):
        """Hammer the mW caches from threads; no corruption, right data."""
        base = toy_network.planned_configuration()
        tilts = tuple(base.tilt_deg(s)
                      for s in range(toy_network.n_sectors))
        want = toy_pathloss.gain_tensor_mw(tilts).copy()
        alt = tuple(t + 1.0 for t in tilts)
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    got = toy_pathloss.gain_tensor_mw(tilts)
                    if not np.array_equal(got, want):
                        raise AssertionError("corrupted tensor")
                    toy_pathloss.gain_tensor_mw(alt)
                    toy_pathloss.gain_matrix_mw(0, tilts[0])
            except Exception as exc:   # surfaced in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_lru_cache_pickles_without_lock(self):
        import pickle
        from repro.model.pathloss import LRUCache
        cache = LRUCache(4)
        cache.put("a", 1)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get("a") == 1
        clone.put("b", 2)           # the recreated lock works
        assert "b" in clone


# ----------------------------------------------------------------------
class TestScenarioSweep:
    def test_sweep_matches_serial(self, small_area):
        from repro.upgrades.planner import UpgradePlanner
        from repro.upgrades.scenario import UpgradeScenario
        scenarios = [UpgradeScenario.SINGLE_SECTOR,
                     UpgradeScenario.FULL_SITE]
        planner = UpgradePlanner(small_area)
        want = [planner.mitigate(s, tuning="power") for s in scenarios]
        got = planner.sweep_scenarios(scenarios, workers=2,
                                      tuning="power")
        assert [o.scenario for o in got] == scenarios
        for parallel, serial in zip(got, want):
            assert parallel.plan.c_after == serial.plan.c_after
            assert parallel.plan.f_after == serial.plan.f_after
        assert multiprocessing.active_children() == []

    def test_sweep_serial_fallback_single_worker(self, small_area):
        from repro.upgrades.planner import UpgradePlanner
        from repro.upgrades.scenario import UpgradeScenario
        planner = UpgradePlanner(small_area)
        outcomes = planner.sweep_scenarios(
            [UpgradeScenario.SINGLE_SECTOR], workers=1, tuning="power")
        assert len(outcomes) == 1
        assert outcomes[0].scenario is UpgradeScenario.SINGLE_SECTOR
