"""Unit tests for the per-sector, per-tilt path-loss database."""

import numpy as np
import pytest

from repro.model.geometry import GridSpec, Region
from repro.model.network import CellularNetwork
from repro.model.pathloss import PathLossDatabase
from repro.model.propagation import Environment

from conftest import make_sectors


@pytest.fixture
def world():
    grid = GridSpec(Region.square(3_000.0), cell_size=200.0)
    env = Environment.flat(grid)
    net = CellularNetwork(make_sectors(
        [(-800.0, 0.0), (800.0, 0.0)], azimuths=[90.0, 270.0]))
    return grid, env, net


class TestConstruction:
    def test_shapes_and_sign(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env,
                                               shadowing_sigma_db=0.0)
        for i in range(net.n_sectors):
            m = db.gain_matrix(i, net.sector(i).planned_tilt_deg)
            assert m.shape == grid.shape
            assert np.all(m < 0)

    def test_per_sector_shadowing_differs(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env,
                                               shadowing_sigma_db=6.0, seed=3)
        nodb = PathLossDatabase.from_environment(net, env,
                                                 shadowing_sigma_db=0.0,
                                                 seed=3)
        d0 = db.gain_matrix(0, 4.0) - nodb.gain_matrix(0, 4.0)
        d1 = db.gain_matrix(1, 4.0) - nodb.gain_matrix(1, 4.0)
        # Both sectors are shadowed, but independently.
        assert d0.std() > 1.0 and d1.std() > 1.0
        assert not np.allclose(d0, d1)

    def test_seed_reproducibility(self, world):
        grid, env, net = world
        a = PathLossDatabase.from_environment(net, env, seed=9)
        b = PathLossDatabase.from_environment(net, env, seed=9)
        assert np.array_equal(a.gain_matrix(0, 4.0), b.gain_matrix(0, 4.0))

    def test_bad_tilt_model_rejected(self, world):
        grid, env, net = world
        with pytest.raises(ValueError):
            PathLossDatabase.from_environment(net, env,
                                              tilt_model="nonsense")


class TestTiltModels:
    def test_uptilt_gains_far_loses_near(self, world):
        """Figure 7(c): an uptilt shifts energy toward distant grids."""
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env,
                                               shadowing_sigma_db=0.0)
        sector = net.sector(0)     # at (-800, 0) facing east
        planned = db.gain_matrix(0, sector.planned_tilt_deg)
        uptilted = db.gain_matrix(0, 0.0)
        far = grid.cell_of(1_400.0, 0.0)       # 2.2 km out, boresight
        near = grid.cell_of(-700.0, 0.0)       # 100 m from the mast
        assert uptilted[far] > planned[far]
        assert uptilted[near] <= planned[near] + 1e-9

    def test_shared_delta_approximates_exact(self, world):
        """The paper's shared change-matrix is a *coarse* approximation:
        it must agree in sign and rough size along the boresight."""
        grid, env, net = world
        exact = PathLossDatabase.from_environment(
            net, env, shadowing_sigma_db=0.0, tilt_model="exact")
        approx = PathLossDatabase.from_environment(
            net, env, shadowing_sigma_db=0.0, tilt_model="shared-delta")
        e = exact.gain_matrix(0, 1.0) - exact.gain_matrix(0, 4.0)
        a = approx.gain_matrix(0, 1.0) - approx.gain_matrix(0, 4.0)
        far = grid.cell_of(1_400.0, 0.0)
        assert np.sign(e[far]) == np.sign(a[far])
        assert abs(e[far] - a[far]) < 3.0

    def test_gain_tensor_matches_matrices(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env,
                                               shadowing_sigma_db=0.0)
        tilts = np.asarray([2.0, 6.0])
        tensor = db.gain_tensor(tilts)
        assert tensor.shape == (2,) + grid.shape
        assert np.array_equal(tensor[0], db.gain_matrix(0, 2.0))
        assert np.array_equal(tensor[1], db.gain_matrix(1, 6.0))

    def test_gain_tensor_cache_hit(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env)
        tilts = np.asarray([4.0, 4.0])
        first = db.gain_tensor(tilts)
        second = db.gain_tensor(tilts.copy())
        assert first is second     # memoized by value

    def test_tensor_wrong_length_rejected(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env)
        with pytest.raises(ValueError):
            db.gain_tensor(np.asarray([4.0]))

    def test_distance_matrix(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env)
        d = db.distance_matrix(0)
        assert d.shape == grid.shape
        row, col = grid.cell_of(-800.0, 0.0)
        assert d[row, col] < 200.0


class TestLRUCaches:
    """Regression: the tensor cache must evict one entry, not wipe."""

    def test_lru_evicts_oldest_only(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env,
                                               shadowing_sigma_db=0.0)
        from repro.model.pathloss import DEFAULT_TENSOR_CACHE_SIZE
        tensors = []
        for i in range(DEFAULT_TENSOR_CACHE_SIZE + 1):
            tensors.append(db.gain_tensor(np.asarray([float(i % 8),
                                                      float(i // 8)])))
        # Newest entries survive; re-requesting the most recent is a hit.
        last = db.gain_tensor(np.asarray(
            [float(DEFAULT_TENSOR_CACHE_SIZE % 8),
             float(DEFAULT_TENSOR_CACHE_SIZE // 8)]))
        assert last is tensors[-1]
        # Second-newest also survived the single eviction (the old bug
        # cleared the whole cache when it overflowed).
        second = db.gain_tensor(np.asarray(
            [float((DEFAULT_TENSOR_CACHE_SIZE - 1) % 8),
             float((DEFAULT_TENSOR_CACHE_SIZE - 1) // 8)]))
        assert second is tensors[-2]

    def test_lru_unit(self):
        from repro.model.pathloss import LRUCache
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes "a"
        cache.put("c", 3)                   # evicts LRU "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.hits == 3 and cache.misses == 1

    def test_lru_zero_size_stores_nothing(self):
        from repro.model.pathloss import LRUCache
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None

    def test_lru_rejects_negative(self):
        from repro.model.pathloss import LRUCache
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestMilliwattPlanes:
    def test_gain_matrix_mw_matches_db(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env,
                                               shadowing_sigma_db=0.0)
        mw = db.gain_matrix_mw(0, 4.0)
        expected = np.power(10.0, db.gain_matrix(0, 4.0) / 10.0)
        assert np.array_equal(mw, expected)
        assert not mw.flags.writeable

    def test_gain_tensor_mw_stacks_rows(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env,
                                               shadowing_sigma_db=0.0)
        tilts = np.asarray([2.0, 6.0])
        tensor = db.gain_tensor_mw(tilts)
        assert tensor.shape == (2,) + grid.shape
        assert np.array_equal(tensor[0], db.gain_matrix_mw(0, 2.0))
        assert np.array_equal(tensor[1], db.gain_matrix_mw(1, 6.0))

    def test_invalidate_bumps_epoch_and_clears(self, world):
        grid, env, net = world
        db = PathLossDatabase.from_environment(net, env,
                                               shadowing_sigma_db=0.0)
        tilts = np.asarray([4.0, 4.0])
        first = db.gain_tensor_mw(tilts)
        epoch = db.cache_epoch
        db.invalidate_caches()
        assert db.cache_epoch == epoch + 1
        second = db.gain_tensor_mw(tilts)
        assert second is not first          # caches were dropped
        assert np.array_equal(second, first)
