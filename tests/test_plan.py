"""Unit tests for plan value types and the recovery ratio (Formula 7)."""

import pytest

from repro.core.plan import (ConfigChange, MitigationResult, Parameter,
                             SearchStep, TuningResult, recovery_ratio)
from repro.model.network import CellularNetwork

from conftest import make_sectors


class TestRecoveryRatio:
    def test_full_recovery(self):
        assert recovery_ratio(10.0, 4.0, 10.0) == 1.0

    def test_no_recovery(self):
        assert recovery_ratio(10.0, 4.0, 4.0) == 0.0

    def test_paper_example_scenario1(self):
        """Testbed scenario 1: (3.09-2.68)/(3.31-2.68) ~ 65%."""
        assert recovery_ratio(3.31, 2.68, 3.09) == pytest.approx(
            0.6508, abs=1e-3)

    def test_negative_cross_recovery(self):
        """Table 2 records -29.3%: scoring a coverage-optimized plan
        under the performance utility can go below no-tuning."""
        assert recovery_ratio(10.0, 8.0, 7.4) == pytest.approx(-0.3)

    def test_no_degradation_counts_as_full(self):
        assert recovery_ratio(5.0, 5.0, 5.0) == 1.0
        assert recovery_ratio(5.0, 6.0, 6.0) == 1.0


class TestConfigChange:
    def test_delta_and_describe(self):
        ch = ConfigChange(3, Parameter.POWER, 43.0, 45.0)
        assert ch.delta == 2.0
        assert "sector 3" in ch.describe()
        assert "dBm" in ch.describe()
        tilt = ConfigChange(1, Parameter.TILT, 6.0, 5.5)
        assert "deg" in tilt.describe()


class TestTuningResult:
    def _result(self):
        net = CellularNetwork(make_sectors([(0.0, 0.0), (500.0, 0.0)]))
        c0 = net.planned_configuration()
        c1 = c0.with_power(1, 44.0)
        steps = [SearchStep(ConfigChange(1, Parameter.POWER, 43.0, 44.0),
                            utility=12.0, candidates_evaluated=3)]
        return TuningResult(initial_config=c0, final_config=c1,
                            initial_utility=10.0, final_utility=12.0,
                            steps=steps)

    def test_aggregates(self):
        r = self._result()
        assert r.n_steps == 1
        assert r.total_evaluations == 3
        assert r.utility_gain == 2.0
        assert r.utility_trace() == [10.0, 12.0]
        assert len(r.changes()) == 1


class TestMitigationResult:
    def _mitigation(self):
        net = CellularNetwork(make_sectors([(0.0, 0.0), (500.0, 0.0)]))
        c0 = net.planned_configuration()
        c_up = c0.with_offline([0])
        c_after = c_up.with_power(1, 45.0)
        tuning = TuningResult(initial_config=c_up, final_config=c_after,
                              initial_utility=4.0, final_utility=8.0,
                              steps=[])
        return MitigationResult(target_sectors=(0,), c_before=c0,
                                c_upgrade=c_up, c_after=c_after,
                                f_before=10.0, f_upgrade=4.0, f_after=8.0,
                                tuning=tuning)

    def test_recovery_property(self):
        m = self._mitigation()
        assert m.recovery == pytest.approx(4.0 / 6.0)

    def test_cross_recovery(self):
        m = self._mitigation()
        assert m.cross_recovery(20.0, 10.0, 15.0) == pytest.approx(0.5)

    def test_describe_contains_key_facts(self):
        text = "\n".join(self._mitigation().describe())
        assert "recovery ratio" in text
        assert "f(C_before)" in text
