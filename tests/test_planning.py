"""Unit tests for the offline planning pass."""

import pytest

from repro.core.planning import PlanningSettings, optimize_planned_configuration


class TestPlanning:
    def test_never_reduces_utility(self, toy_evaluator, toy_network):
        start = toy_network.planned_configuration()
        planned = optimize_planned_configuration(
            toy_evaluator, toy_network, start)
        assert toy_evaluator.utility_of(planned) >= \
            toy_evaluator.utility_of(start)

    def test_result_is_single_move_local_optimum(self, toy_evaluator,
                                                 toy_network):
        """After planning, no single power step improves the utility —
        the fixed point that makes recovery ratios meaningful."""
        planned = optimize_planned_configuration(
            toy_evaluator, toy_network,
            toy_network.planned_configuration(),
            PlanningSettings(max_passes=10))
        f_star = toy_evaluator.utility_of(planned)
        for sid in range(toy_network.n_sectors):
            sector = toy_network.sector(sid)
            for delta in (1.0, -1.0):
                power = planned.power_dbm(sid) + delta
                if not (sector.min_power_dbm <= power
                        <= sector.max_power_dbm):
                    continue
                trial = planned.with_power(sid, power)
                assert toy_evaluator.utility_of(trial) <= f_star + 1e-9

    def test_zero_passes_is_identity(self, toy_evaluator, toy_network):
        start = toy_network.planned_configuration()
        planned = optimize_planned_configuration(
            toy_evaluator, toy_network, start,
            PlanningSettings(max_passes=0))
        assert planned == start

    def test_power_only_mode_keeps_tilts(self, toy_evaluator, toy_network):
        start = toy_network.planned_configuration()
        planned = optimize_planned_configuration(
            toy_evaluator, toy_network, start,
            PlanningSettings(include_tilt=False))
        for sid in range(toy_network.n_sectors):
            assert planned.tilt_deg(sid) == start.tilt_deg(sid)

    def test_offline_sectors_untouched(self, toy_evaluator, toy_network):
        start = toy_network.planned_configuration().with_offline([2])
        planned = optimize_planned_configuration(
            toy_evaluator, toy_network, start)
        assert planned.settings[2] == start.settings[2]
