"""The packed tilt-major path-loss store and on-disk format (PR 7).

Three layers: the in-memory :class:`PackedGainStore` (float32 parity
with the dict-of-rasters path, off-ladder fallback quantization, the
vectorized ``validate()`` sweep), the ``magus.plossdb/1`` on-disk
format (byte-identical round trips, streamed builds, actionable errors
for bad magic / version drift / truncation / interrupted builds), and
the loaded memory-mapped database as a drop-in engine backend (full vs
delta parity, process-pool scoring over spilled plane files).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.planning import PlanningSettings
from repro.core.utility import PerformanceUtility
from repro.model.engine import AnalysisEngine
from repro.model.pathloss import (DEFAULT_CLIP_FLOOR_DB,
                                  DEFAULT_PROFILE_CACHE_SIZE,
                                  PathLossDatabase)
from repro.model.plossdb import (FORMAT_NAME, FORMAT_VERSION, MAGIC,
                                 PackedDatabaseWriter, PackedGainStore,
                                 default_tilt_values, load_packed,
                                 pack_database, read_header, save_packed,
                                 stream_database, verify_sections)
from repro.model.propagation import Environment
from repro.parallel import EvaluationService
from repro.synthetic.market import AreaDimensions, build_area
from repro.synthetic.placement import AreaType


def _packed_clone(db: PathLossDatabase) -> PathLossDatabase:
    """A second database over the same rasters, with a packed store."""
    clone = PathLossDatabase(db.grid, db.network, db._rasters,
                             db.tilt_model, validate=False)
    clone.attach_packed(pack_database(clone))
    return clone


def _rotating_assignments(ladder, n_sectors):
    return [np.array([ladder[(j + s) % len(ladder)]
                      for s in range(n_sectors)])
            for j in range(len(ladder))]


@pytest.fixture
def packed_db(toy_pathloss) -> PathLossDatabase:
    return _packed_clone(toy_pathloss)


# ----------------------------------------------------------------------
class TestPackedStore:
    def test_tensor_matches_quantized_dict(self, toy_pathloss, packed_db):
        """Packed gathers == float32-quantized dict recomputation."""
        ladder = packed_db.packed_store.tilt_values
        assert ladder == default_tilt_values(toy_pathloss.network)
        for tilts in _rotating_assignments(ladder,
                                           toy_pathloss.network.n_sectors):
            want = np.power(10.0, toy_pathloss.gain_tensor(tilts) / 10.0
                            ).astype(np.float32)
            got = packed_db.gain_tensor_mw(tilts)
            assert got.dtype == np.float32
            assert not got.flags.writeable
            assert np.array_equal(got, want)

    def test_row_view_matches_gather(self, packed_db):
        ladder = packed_db.packed_store.tilt_values
        n = packed_db.network.n_sectors
        tilts = np.array([ladder[s % len(ladder)] for s in range(n)])
        stack = packed_db.gain_tensor_mw(tilts)
        for s in range(n):
            assert np.array_equal(stack[s],
                                  packed_db.gain_matrix_mw(s, tilts[s]))

    def test_off_ladder_fallback_is_quantized(self, packed_db):
        """Off-grid tilts recompute but still emit float32 planes."""
        assert 2.5 not in packed_db.packed_store.tilt_values
        row = packed_db.gain_matrix_mw(0, 2.5)
        assert row.dtype == np.float32
        want = np.power(10.0, packed_db.gain_matrix(0, 2.5) / 10.0
                        ).astype(np.float32)
        assert np.array_equal(row, want)
        # A mixed assignment (one off-ladder tilt) falls back as a whole
        # but stays float32 so delta incumbents remain comparable.
        n = packed_db.network.n_sectors
        tilts = np.full(n, packed_db.packed_store.tilt_values[0])
        tilts[0] = 2.5
        assert packed_db.gain_tensor_mw(tilts).dtype == np.float32

    def test_azimuth_offset_bypasses_store(self, packed_db):
        plain = packed_db.gain_matrix_mw(0, 4.0)
        rotated = packed_db.gain_matrix_mw(0, 4.0,
                                           azimuth_offset_deg=30.0)
        assert rotated.dtype == np.float32
        assert not np.array_equal(plain, rotated)

    def test_attach_rejects_shape_mismatch(self, toy_pathloss):
        db = PathLossDatabase(toy_pathloss.grid, toy_pathloss.network,
                              toy_pathloss._rasters, validate=False)
        n = db.network.n_sectors
        H, W = db.grid.shape
        wrong_sectors = PackedGainStore(
            np.ones((n + 1, 2, H, W), np.float32), (2.0, 4.0))
        with pytest.raises(ValueError, match="sectors"):
            db.attach_packed(wrong_sectors)
        wrong_grid = PackedGainStore(
            np.ones((n, 2, H + 1, W), np.float32), (2.0, 4.0))
        with pytest.raises(ValueError, match="grid"):
            db.attach_packed(wrong_grid)

    def test_validate_names_bad_packed_sector(self, toy_pathloss):
        """The vectorized sweep reports which sector blocks are bad."""
        db = PathLossDatabase(toy_pathloss.grid, toy_pathloss.network,
                              toy_pathloss._rasters, validate=False)
        base = pack_database(db)
        gains = np.array(base.gains_mw)          # writable copy
        gains[1, 0, 0, 0] = np.nan
        db.attach_packed(PackedGainStore(gains, base.tilt_values))
        with pytest.raises(ValueError, match=r"sectors \[1\]"):
            db.validate()

    def test_invalidate_detaches_packed_store(self, packed_db):
        epoch = packed_db.cache_epoch
        packed_db.invalidate_caches()
        assert packed_db.packed_store is None
        assert packed_db.cache_epoch == epoch + 1
        # Recomputed planes must stay comparable with existing float32
        # state, so the plane dtype survives the detach.
        assert packed_db.plane_dtype == np.float32
        assert packed_db.gain_matrix_mw(0, 4.0).dtype == np.float32

    def test_shared_profile_cache_is_bounded(self, toy_grid, toy_network):
        db = PathLossDatabase.from_environment(
            toy_network, Environment.flat(toy_grid),
            shadowing_sigma_db=0.0, seed=0, tilt_model="shared-delta")
        for tilt in np.linspace(0.0, 8.0, DEFAULT_PROFILE_CACHE_SIZE * 3):
            db.gain_matrix(0, float(tilt))
        assert len(db._shared_profiles) <= DEFAULT_PROFILE_CACHE_SIZE
        db.invalidate_caches()
        assert len(db._shared_profiles) == 0


# ----------------------------------------------------------------------
class TestOnDiskFormat:
    def test_save_and_stream_are_byte_identical(self, tmp_path, toy_grid,
                                                toy_network, toy_pathloss):
        """Two saves agree, and the streamed builder produces the very
        same bytes as packing the in-memory database (same helpers,
        same seeds)."""
        a, b, c = (tmp_path / n for n in ("a.plossdb", "b.plossdb",
                                          "c.plossdb"))
        save_packed(toy_pathloss, a)
        save_packed(toy_pathloss, b)
        assert a.read_bytes() == b.read_bytes()
        stream_database(c, toy_network, Environment.flat(toy_grid),
                        shadowing_sigma_db=0.0, seed=0)
        assert c.read_bytes() == a.read_bytes()

    def test_header_carries_identity(self, tmp_path, toy_pathloss):
        path = tmp_path / "toy.plossdb"
        save_packed(toy_pathloss, path)
        header = read_header(path)
        assert header["format"] == FORMAT_NAME
        assert header["version"] == FORMAT_VERSION
        assert header["n_sectors"] == toy_pathloss.network.n_sectors
        assert tuple(header["tilt_values"]) == default_tilt_values(
            toy_pathloss.network)
        assert header["file_bytes"] == os.path.getsize(path)

    def test_bad_magic_is_actionable(self, tmp_path):
        path = tmp_path / "junk.plossdb"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ValueError, match="bad magic"):
            read_header(path)

    def test_version_mismatch_is_actionable(self, tmp_path):
        path = tmp_path / "future.plossdb"
        future = FORMAT_VERSION + 1
        raw = json.dumps({"format": FORMAT_NAME,
                          "version": future}).encode()
        path.write_bytes(MAGIC + len(raw).to_bytes(8, "little") + raw)
        with pytest.raises(ValueError, match=f"version {future}"):
            read_header(path)

    def test_truncated_file_is_actionable(self, tmp_path, toy_pathloss):
        path = tmp_path / "cut.plossdb"
        save_packed(toy_pathloss, path)
        os.truncate(path, os.path.getsize(path) // 2)
        with pytest.raises(ValueError, match="re-run the pack"):
            read_header(path)

    def test_interrupted_build_fails_loudly(self, tmp_path, toy_pathloss):
        """A build that dies mid-stream leaves a headerless file that
        no loader will silently accept."""
        path = tmp_path / "dead.plossdb"
        ladder = default_tilt_values(toy_pathloss.network)
        H, W = toy_pathloss.grid.shape
        with pytest.raises(RuntimeError, match="power cut"):
            with PackedDatabaseWriter(path, toy_pathloss.grid,
                                      toy_pathloss.network,
                                      ladder) as writer:
                planes = np.ones((len(ladder), H, W), np.float32)
                writer.write_sector(0, toy_pathloss._rasters[0], planes)
                raise RuntimeError("power cut")
        assert path.exists()
        with pytest.raises(ValueError, match="bad magic"):
            read_header(path)
        with pytest.raises(ValueError):
            load_packed(path)

    def test_incomplete_close_is_rejected(self, tmp_path, toy_pathloss):
        path = tmp_path / "partial.plossdb"
        writer = PackedDatabaseWriter(path, toy_pathloss.grid,
                                      toy_pathloss.network,
                                      default_tilt_values(
                                          toy_pathloss.network))
        try:
            with pytest.raises(ValueError, match="sector"):
                writer.close()
        finally:
            writer.abort()


# ----------------------------------------------------------------------
class TestLoadedDatabase:
    @pytest.fixture
    def loaded(self, tmp_path, toy_pathloss) -> PathLossDatabase:
        path = tmp_path / "toy.plossdb"
        save_packed(toy_pathloss, path)
        return load_packed(path)

    def test_loaded_matches_in_memory_pack(self, toy_pathloss, packed_db,
                                           loaded):
        assert loaded.is_file_backed
        assert loaded.plane_dtype == np.float32
        ladder = loaded.packed_store.tilt_values
        for tilts in _rotating_assignments(ladder,
                                           loaded.network.n_sectors):
            assert np.array_equal(loaded.gain_tensor_mw(tilts),
                                  packed_db.gain_tensor_mw(tilts))

    def test_full_delta_parity_on_mmap(self, loaded, toy_density):
        engine = AnalysisEngine(loaded)
        network = loaded.network
        base = network.planned_configuration()
        _, incumbent = engine.evaluate_with_incumbent(base, toy_density)
        for trial in (base.with_power(0, 38.0),
                      base.with_tilt(1, 6.0),
                      base.with_power(2, 30.0)):
            full = engine.evaluate(trial, toy_density)
            delta, _ = engine.evaluate_delta(incumbent, trial,
                                             toy_density)
            assert np.array_equal(full.serving, delta.serving)
            assert np.array_equal(full.sinr_db, delta.sinr_db)
            assert np.array_equal(full.rate_bps, delta.rate_bps)

    def test_parallel_scoring_spills_planes_to_file(self, loaded,
                                                    toy_density):
        """A file-backed engine makes the service spill incumbent
        planes to mmap-able temp files; utilities stay bitwise equal
        to the serial delta path."""
        engine = AnalysisEngine(loaded)
        network = loaded.network
        base = network.planned_configuration()
        candidates = [base.with_power(s, p) for s in range(3)
                      for p in (30.0, 33.0, 38.0)]
        serial = Evaluator(engine, toy_density, PerformanceUtility(),
                           strategy="delta")
        serial.utility_of(base)
        want = serial.score_candidates(candidates)
        _, incumbent = engine.evaluate_with_incumbent(base, toy_density)
        with EvaluationService(engine, toy_density, PerformanceUtility(),
                               workers=2,
                               min_parallel_batch=2) as service:
            assert service._store.spill_bytes == 0
            got = service.score_batch(incumbent, candidates)
            handles = next(iter(service._store._blocks.values()))[1]
            spilled = [h.path for h in handles.values()]
            assert all(p is not None for p in spilled)
        assert got == want
        # Closing the service unlinks the spill files.
        assert not any(os.path.exists(p) for p in spilled)


# ----------------------------------------------------------------------
class TestMarketIntegration:
    DIMS = AreaDimensions(tuning_side_m=1_600.0, margin_m=800.0,
                          cell_size_m=200.0)

    def test_build_area_packed_backend(self):
        area = build_area(AreaType.SUBURBAN, seed=42, dims=self.DIMS,
                          planning=PlanningSettings(max_passes=0),
                          pathloss_backend="packed")
        assert area.pathloss.packed_store is not None
        assert not area.pathloss.is_file_backed
        assert np.isfinite(area.baseline.rate_bps[
            area.baseline.serving >= 0]).all()

    def test_build_area_plossdb_roundtrip(self, tmp_path):
        path = str(tmp_path / "area.plossdb")
        first = build_area(AreaType.SUBURBAN, seed=42, dims=self.DIMS,
                           planning=PlanningSettings(max_passes=0),
                           plossdb=path)
        assert first.pathloss.is_file_backed
        assert os.path.exists(path)
        # Second build memory-maps the existing file.
        again = build_area(AreaType.SUBURBAN, seed=42, dims=self.DIMS,
                           planning=PlanningSettings(max_passes=0),
                           plossdb=path)
        assert again.pathloss.is_file_backed
        assert np.array_equal(first.baseline.sinr_db,
                              again.baseline.sinr_db)

    def test_build_area_plossdb_mismatch_guard(self, tmp_path):
        path = str(tmp_path / "area.plossdb")
        build_area(AreaType.SUBURBAN, seed=42, dims=self.DIMS,
                   planning=PlanningSettings(max_passes=0), plossdb=path)
        with pytest.raises(ValueError, match="different network"):
            build_area(AreaType.SUBURBAN, seed=43, dims=self.DIMS,
                       planning=PlanningSettings(max_passes=0),
                       plossdb=path)


# ----------------------------------------------------------------------
def _downgrade_to_v2(path) -> None:
    """Rewrite a v3 file's header as a pre-ROI v2 header in place.

    The roi section and clip floor disappear from the header (the
    section's bytes become dead padding); offsets and checksums of the
    remaining sections are untouched, so the result is exactly what an
    older build would read.
    """
    preamble = len(MAGIC) + 8
    with open(path, "r+b") as fh:
        head = fh.read(preamble)
        header_len = int.from_bytes(head[len(MAGIC):], "little")
        header = json.loads(fh.read(header_len).decode("utf-8"))
        header["version"] = 2
        header.pop("clip_floor_db", None)
        header["sections"].pop("roi", None)
        raw = json.dumps(header, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
        assert len(raw) <= header_len
        fh.seek(len(MAGIC))
        fh.write(len(raw).to_bytes(8, "little"))
        fh.write(raw + b"\x00" * (header_len - len(raw)))


class TestRoiFormat:
    """The v3 ROI sidecar: persisted boxes, legacy files, sparsity."""

    def test_v3_header_and_roi_section(self, tmp_path, toy_pathloss):
        path = tmp_path / "toy.plossdb"
        save_packed(toy_pathloss, path)
        header = read_header(path)
        assert header["version"] == 3
        assert header["clip_floor_db"] == DEFAULT_CLIP_FLOOR_DB
        spec = header["sections"]["roi"]
        assert spec["shape"] == [header["n_sectors"],
                                 header["n_tilts"], 4]
        assert "roi" in verify_sections(path, header)
        loaded = load_packed(path)
        assert loaded.packed_store.has_footprints
        assert loaded.clip_floor_db == DEFAULT_CLIP_FLOOR_DB

    def test_clip_floor_none_is_persisted(self, tmp_path, toy_pathloss):
        path = tmp_path / "raw.plossdb"
        save_packed(toy_pathloss, path, clip_floor_db=None)
        assert read_header(path)["clip_floor_db"] is None
        assert load_packed(path).clip_floor_db is None

    def test_v2_file_still_loads(self, tmp_path, toy_pathloss):
        new, old = tmp_path / "v3.plossdb", tmp_path / "v2.plossdb"
        save_packed(toy_pathloss, new)
        save_packed(toy_pathloss, old)
        _downgrade_to_v2(old)
        assert read_header(old)["version"] == 2
        legacy = load_packed(old)
        assert not legacy.packed_store.has_footprints
        assert legacy.clip_floor_db is None
        current = load_packed(new)
        assert np.array_equal(np.asarray(legacy.packed_store.gains_mw),
                              np.asarray(current.packed_store.gains_mw))
        # Lazy boxes still bound the nonzero cells exactly, so the
        # windowed engine stays *correct* on legacy files (just not
        # pre-sparsified).
        box = legacy.packed_store.footprint(0, 0)
        plane = np.asarray(legacy.packed_store.row(0, 0))
        rows, cols = np.nonzero(plane)
        assert box == (int(rows.min()), int(rows.max()) + 1,
                       int(cols.min()), int(cols.max()) + 1)

    def test_validate_reports_sparsity(self, toy_grid, toy_network):
        db = PathLossDatabase.from_environment(
            toy_network, Environment.flat(toy_grid),
            shadowing_sigma_db=0.0, seed=0, clip_floor_db=-110.0)
        db.attach_packed(pack_database(db))      # inherits the floor
        report = db.validate()
        assert report["clip_floor_db"] == -110.0
        assert 0.0 < report["mean_footprint_ratio"] \
            <= report["max_footprint_ratio"] < 1.0
        ratios = report["per_sector_footprint_ratio"]
        assert len(ratios) == toy_network.n_sectors
        assert all(0.0 < r <= 1.0 for r in ratios)

    def test_validate_dict_backend_returns_none(self, toy_pathloss):
        assert toy_pathloss.validate() is None

    def test_pack_database_inherits_floor(self, toy_grid, toy_network,
                                          toy_pathloss):
        assert (pack_database(toy_pathloss).clip_floor_db
                == DEFAULT_CLIP_FLOOR_DB)
        clipped = PathLossDatabase.from_environment(
            toy_network, Environment.flat(toy_grid),
            shadowing_sigma_db=0.0, seed=0, clip_floor_db=-110.0)
        assert pack_database(clipped).clip_floor_db == -110.0
