"""Unit tests for the SPM propagation model, clutter and diffraction."""

import numpy as np
import pytest

from repro.model.geometry import GridSpec, Region
from repro.model.propagation import (CLUTTER_LOSS_DB, ClutterClass,
                                     Environment, PropagationModel,
                                     SPMParameters, Transmitter)


@pytest.fixture
def grid():
    return GridSpec(Region.square(4_000.0), cell_size=200.0)


@pytest.fixture
def flat_env(grid):
    return Environment.flat(grid)


class TestSPMParameters:
    def test_loss_increases_with_distance(self):
        spm = SPMParameters()
        d = np.asarray([100.0, 1_000.0, 10_000.0])
        loss = spm.basic_loss_db(d, h_eff_m=30.0)
        assert np.all(np.diff(loss) > 0)

    def test_slope_is_k2_per_decade_at_fixed_height(self):
        spm = SPMParameters()
        l1 = spm.basic_loss_db(np.asarray([1_000.0]), 30.0)[0]
        l2 = spm.basic_loss_db(np.asarray([10_000.0]), 30.0)[0]
        expected = spm.k2 + spm.k5 * np.log10(30.0)
        assert l2 - l1 == pytest.approx(expected)

    def test_taller_mast_reduces_loss(self):
        spm = SPMParameters()
        low = spm.basic_loss_db(np.asarray([2_000.0]), 15.0)[0]
        high = spm.basic_loss_db(np.asarray([2_000.0]), 60.0)[0]
        assert high < low

    def test_distance_clamp(self):
        spm = SPMParameters(min_distance_m=25.0)
        near = spm.basic_loss_db(np.asarray([1.0]), 30.0)[0]
        at_clamp = spm.basic_loss_db(np.asarray([25.0]), 30.0)[0]
        assert near == at_clamp


class TestEnvironment:
    def test_flat_constructor(self, grid):
        env = Environment.flat(grid, ClutterClass.SUBURBAN)
        assert env.terrain_m.shape == grid.shape
        assert np.all(env.clutter == int(ClutterClass.SUBURBAN))

    def test_shape_validation(self, grid):
        with pytest.raises(ValueError):
            Environment(grid=grid, terrain_m=np.zeros((2, 2)),
                        clutter=np.zeros(grid.shape, dtype=np.int8))
        with pytest.raises(ValueError):
            Environment(grid=grid, terrain_m=np.zeros(grid.shape),
                        clutter=np.zeros(grid.shape, dtype=np.int8),
                        shadowing_db=np.zeros((3, 3)))

    def test_clutter_loss_lookup(self, grid):
        env = Environment.flat(grid, ClutterClass.URBAN)
        loss = env.clutter_loss_db()
        assert np.all(loss == CLUTTER_LOSS_DB[ClutterClass.URBAN])

    def test_all_clutter_classes_have_losses(self):
        for cls_ in ClutterClass:
            assert cls_ in CLUTTER_LOSS_DB


class TestPathGain:
    def test_gain_negative_and_decaying(self, flat_env):
        model = PropagationModel(flat_env)
        tx = Transmitter(x=0.0, y=0.0, azimuth_deg=0.0)
        gain = model.path_gain_db(tx)
        assert gain.shape == flat_env.grid.shape
        assert np.all(gain < 0)
        # Boresight far cell is weaker than boresight near cell.
        grid = flat_env.grid
        near = gain[grid.cell_of(0.0, 300.0)]
        far = gain[grid.cell_of(0.0, 1_900.0)]
        assert far < near

    def test_paper_magnitude_range(self):
        """Path gains should span the paper's -20..-200 dB ballpark."""
        grid = GridSpec(Region.square(40_000.0), cell_size=500.0)
        env = Environment.flat(grid)
        model = PropagationModel(env)
        gain = model.path_gain_db(Transmitter(x=0.0, y=0.0))
        assert gain.max() > -95.0          # strong near the mast
        assert gain.min() < -140.0         # weak at the fringe

    def test_directionality(self, flat_env):
        model = PropagationModel(flat_env)
        tx = Transmitter(x=0.0, y=0.0, azimuth_deg=0.0)  # facing north
        gain = model.path_gain_db(tx)
        grid = flat_env.grid
        front = gain[grid.cell_of(0.0, 1_500.0)]
        back = gain[grid.cell_of(0.0, -1_500.0)]
        assert front - back == pytest.approx(
            tx.antenna.front_back_db, abs=1.0)

    def test_clutter_adds_loss(self, grid):
        open_env = Environment.flat(grid, ClutterClass.OPEN)
        urban_env = Environment.flat(grid, ClutterClass.DENSE_URBAN)
        tx = Transmitter(x=0.0, y=0.0)
        g_open = PropagationModel(open_env).path_gain_db(tx)
        g_urban = PropagationModel(urban_env).path_gain_db(tx)
        expected = CLUTTER_LOSS_DB[ClutterClass.DENSE_URBAN]
        assert np.allclose(g_open - g_urban, expected)

    def test_terrain_blocking_costs_signal(self, grid):
        """A ridge between TX and the far side adds diffraction loss."""
        flat = Environment.flat(grid)
        terrain = np.zeros(grid.shape)
        # A tall east-west ridge north of the transmitter.
        ridge_row = grid.cell_of(0.0, 800.0)[0]
        terrain[ridge_row, :] = 120.0
        ridged = Environment(grid=grid, terrain_m=terrain,
                             clutter=flat.clutter.copy())
        tx = Transmitter(x=0.0, y=0.0)
        g_flat = PropagationModel(flat).path_gain_db(tx)
        g_ridge = PropagationModel(ridged).path_gain_db(tx)
        behind = grid.cell_of(0.0, 1_700.0)
        assert g_ridge[behind] < g_flat[behind] - 3.0

    def test_shadowing_field_applies(self, grid):
        shadow = np.full(grid.shape, 7.0)
        env = Environment(grid=grid, terrain_m=np.zeros(grid.shape),
                          clutter=np.zeros(grid.shape, dtype=np.int8),
                          shadowing_db=shadow)
        flat = Environment.flat(grid)
        tx = Transmitter(x=0.0, y=0.0)
        g_shadowed = PropagationModel(env).path_gain_db(tx)
        g_flat = PropagationModel(flat).path_gain_db(tx)
        assert np.allclose(g_flat - g_shadowed, 7.0)

    def test_deterministic(self, flat_env):
        model = PropagationModel(flat_env)
        tx = Transmitter(x=100.0, y=-200.0, azimuth_deg=120.0)
        a = model.path_gain_db(tx, tilt_deg=4.0)
        b = model.path_gain_db(tx, tilt_deg=4.0)
        assert np.array_equal(a, b)
