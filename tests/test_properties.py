"""Property-based tests (hypothesis) on core data structures and
invariants: link adaptation monotonicity, configuration algebra,
recovery-ratio bounds, SINR physics, attenuator semantics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import empirical_cdf, improvement_ratio
from repro.core.plan import recovery_ratio
from repro.model.antenna import AntennaPattern, TiltRange
from repro.model.geometry import GridSpec, Region
from repro.model.linkrate import LinkAdaptation
from repro.model.network import CellularNetwork
from repro.testbed.channel import AttenuatorSpec

from conftest import make_sectors

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestLinkAdaptationProperties:
    @given(st.floats(min_value=-40.0, max_value=60.0),
           st.floats(min_value=-40.0, max_value=60.0))
    def test_rate_monotone(self, a, b):
        link = LinkAdaptation()
        lo, hi = min(a, b), max(a, b)
        assert link.max_rate_bps(lo) <= link.max_rate_bps(hi)

    @given(st.floats(min_value=-40.0, max_value=60.0))
    def test_cqi_in_range(self, sinr):
        cqi = int(LinkAdaptation().cqi_for_sinr(sinr))
        assert 0 <= cqi <= 15

    @given(st.floats(min_value=1.4, max_value=20.0))
    def test_rate_scales_with_bandwidth(self, mhz):
        wide = LinkAdaptation(bandwidth_mhz=mhz)
        narrow = LinkAdaptation(bandwidth_mhz=1.4)
        assert wide.max_rate_bps(20.0) >= narrow.max_rate_bps(20.0)


class TestRecoveryRatioProperties:
    @given(finite, finite, finite)
    def test_ratio_is_finite_when_degraded(self, f_b, f_u, f_a):
        if f_b - f_u > 1e-9:
            r = recovery_ratio(f_b, f_u, f_a)
            assert math.isfinite(r)

    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=-1e6, max_value=1e6))
    def test_full_recovery_is_one(self, f_b, f_u):
        if f_b > f_u + 1e-6:
            assert recovery_ratio(f_b, f_u, f_b) == pytest.approx(1.0)

    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_f_after(self, f_b, f_u, t):
        if f_b > f_u + 1e-6:
            mid = f_u + t * (f_b - f_u)
            assert recovery_ratio(f_b, f_u, mid) <= \
                recovery_ratio(f_b, f_u, f_b) + 1e-9


class TestConfigurationAlgebra:
    @st.composite
    def config_and_sector(draw):
        n = draw(st.integers(min_value=1, max_value=6))
        positions = [(float(i) * 500.0, 0.0) for i in range(n)]
        net = CellularNetwork(make_sectors(positions))
        sid = draw(st.integers(min_value=0, max_value=n - 1))
        return net.planned_configuration(), sid

    @given(config_and_sector(),
           st.floats(min_value=10.0, max_value=46.0))
    def test_with_power_roundtrip(self, cs, power):
        config, sid = cs
        original = config.power_dbm(sid)
        there = config.with_power(sid, power)
        back = there.with_power(sid, original)
        assert back == config

    @given(config_and_sector())
    def test_offline_online_inverse(self, cs):
        config, sid = cs
        assert config.with_offline([sid]).with_online([sid]) == config

    @given(config_and_sector(),
           st.floats(min_value=-5.0, max_value=20.0))
    def test_power_delta_never_exceeds_cap(self, cs, delta):
        config, sid = cs
        capped = config.with_power_delta(sid, delta, max_power_dbm=46.0)
        assert capped.power_dbm(sid) <= 46.0 + 1e-9

    @given(config_and_sector())
    def test_diff_reflexive_empty(self, cs):
        config, _ = cs
        assert config.diff(config) == {}


class TestGeometryProperties:
    @given(st.floats(min_value=200.0, max_value=50_000.0),
           st.floats(min_value=50.0, max_value=1_000.0))
    def test_grid_covers_region(self, side, cell):
        grid = GridSpec(Region.square(side), cell_size=cell)
        assert grid.n_rows * grid.cell_size >= grid.region.height - 1e-6
        assert grid.n_cols * grid.cell_size >= grid.region.width - 1e-6

    @given(st.floats(min_value=-900.0, max_value=899.0),
           st.floats(min_value=-900.0, max_value=899.0))
    def test_cell_of_always_valid(self, x, y):
        grid = GridSpec(Region.square(1_800.0), cell_size=130.0)
        row, col = grid.cell_of(x, y)
        assert 0 <= row < grid.n_rows
        assert 0 <= col < grid.n_cols


class TestAntennaProperties:
    @given(st.floats(min_value=-360.0, max_value=360.0),
           st.floats(min_value=-90.0, max_value=90.0),
           st.floats(min_value=0.0, max_value=10.0))
    def test_gain_bounded(self, phi, theta, tilt):
        ant = AntennaPattern()
        g = float(ant.gain_db(phi, theta, tilt))
        assert ant.gain_dbi - ant.front_back_db <= g <= ant.gain_dbi

    @given(st.floats(min_value=0.0, max_value=8.0))
    def test_tilt_clamp_idempotent(self, tilt):
        tr = TiltRange(normal_deg=4.0, min_deg=0.0, max_deg=8.0,
                       step_deg=0.5)
        snapped = tr.clamp(tilt)
        assert tr.clamp(snapped) == snapped
        assert tr.min_deg <= snapped <= tr.max_deg


class TestAttenuatorProperties:
    @given(st.integers(min_value=1, max_value=30))
    def test_power_monotone_in_level(self, level):
        spec = AttenuatorSpec()
        if level < 30:
            assert spec.power_dbm(level) > spec.power_dbm(level + 1)
        assert spec.power_dbm(level) <= spec.max_power_dbm


class TestMetricsProperties:
    @given(st.lists(st.floats(min_value=-100.0, max_value=100.0),
                    min_size=1, max_size=50))
    def test_cdf_properties(self, values):
        xs, ps = empirical_cdf(values)
        assert len(xs) == len(values)
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ps) > 0)
        assert ps[-1] == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=0.001, max_value=10.0))
    def test_improvement_ratio_sign(self, magus, naive):
        r = improvement_ratio(magus, naive)
        assert r >= 0.0
        assert math.isfinite(r)
