"""Failure-injection and adversarial-input tests across modules.

A production library must fail loudly on corrupt inputs and keep its
invariants under degenerate (but legal) ones.  These tests poke the
seams: NaN path loss, zero UE populations, single-sector networks,
upgrades of every sector at once, and pathological search settings.
"""

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.gradual import GradualSettings, gradual_migration
from repro.core.magus import Magus
from repro.core.search import PowerSearchSettings, tune_power
from repro.model.engine import AnalysisEngine
from repro.model.geometry import GridSpec, Region
from repro.model.network import CellularNetwork
from repro.model.pathloss import PathLossDatabase
from repro.model.propagation import Environment

from conftest import make_sectors


class TestDegeneratePopulations:
    def test_zero_population_everywhere(self, toy_engine, toy_network):
        """No UEs: utilities are zero, nothing crashes, recovery is
        the defined no-degradation value."""
        magus = Magus(toy_network, toy_engine,
                      np.zeros(toy_engine.grid.shape))
        plan = magus.plan_mitigation([1], tuning="power")
        assert plan.f_before == 0.0
        assert plan.recovery == 1.0          # nothing lost, nothing won

    def test_population_in_one_grid(self, toy_engine, toy_network):
        density = np.zeros(toy_engine.grid.shape)
        density[7, 7] = 500.0
        magus = Magus(toy_network, toy_engine, density)
        plan = magus.plan_mitigation([1], tuning="power")
        assert np.isfinite(plan.f_before)
        assert plan.f_before >= plan.f_upgrade


class TestDegenerateTopologies:
    def test_single_sector_network(self, toy_grid):
        net = CellularNetwork(make_sectors([(0.0, 0.0)]))
        env = Environment.flat(toy_grid)
        db = PathLossDatabase.from_environment(net, env,
                                               shadowing_sigma_db=0.0)
        engine = AnalysisEngine(db)
        density = np.full(toy_grid.shape, 1.0)
        magus = Magus(net, engine, density)
        # Upgrading the only sector: no neighbors, zero recovery.
        plan = magus.plan_mitigation([0], tuning="power")
        assert plan.f_upgrade == 0.0          # all coverage gone
        assert plan.recovery == pytest.approx(0.0)
        assert plan.tuning.n_steps == 0

    def test_all_sectors_upgraded(self, toy_engine, toy_network,
                                  toy_density):
        magus = Magus(toy_network, toy_engine, toy_density)
        plan = magus.plan_mitigation([0, 1, 2], tuning="power")
        assert plan.f_upgrade == 0.0
        assert plan.f_after == 0.0            # nobody left to tune


class TestCorruptInputs:
    def test_nan_density_rejected_by_utility(self, toy_engine,
                                             toy_network):
        density = np.full(toy_engine.grid.shape, np.nan)
        with pytest.raises(ValueError, match="finite"):
            toy_engine.evaluate(toy_network.planned_configuration(),
                                density)

    def test_mismatched_network_and_config(self, toy_engine):
        other = CellularNetwork(make_sectors([(0.0, 0.0),
                                              (500.0, 0.0)]))
        with pytest.raises(ValueError):
            toy_engine.evaluate(other.planned_configuration(),
                                np.zeros(toy_engine.grid.shape))


class TestPathologicalSearchSettings:
    def test_zero_iteration_budget(self, toy_evaluator, toy_network):
        c_before = toy_network.planned_configuration()
        baseline = toy_evaluator.state_of(c_before)
        result = tune_power(toy_evaluator, toy_network,
                            c_before.with_offline([1]), baseline, [1],
                            PowerSearchSettings(max_iterations=0))
        assert result.n_steps == 0
        assert result.final_config == c_before.with_offline([1])

    def test_huge_unit_still_respects_caps(self, toy_evaluator,
                                           toy_network):
        c_before = toy_network.planned_configuration()
        baseline = toy_evaluator.state_of(c_before)
        result = tune_power(toy_evaluator, toy_network,
                            c_before.with_offline([1]), baseline, [1],
                            PowerSearchSettings(unit_db=50.0,
                                                max_unit_db=50.0))
        for sid in range(toy_network.n_sectors):
            assert result.final_config.power_dbm(sid) <= \
                toy_network.sector(sid).max_power_dbm + 1e-9

    def test_tiny_neighbor_radius_means_no_moves(self, toy_evaluator,
                                                 toy_network):
        c_before = toy_network.planned_configuration()
        baseline = toy_evaluator.state_of(c_before)
        result = tune_power(toy_evaluator, toy_network,
                            c_before.with_offline([1]), baseline, [1],
                            PowerSearchSettings(neighbor_radius_m=1.0))
        assert result.n_steps == 0
        assert result.termination == "power-exhausted"


class TestGradualEdgeCases:
    def test_gradual_with_no_compensation_moves(self, toy_evaluator,
                                                toy_network):
        """C_after == C_upgrade (no tuning found anything): the ramp
        still runs and the floor still holds."""
        c_before = toy_network.planned_configuration()
        c_after = c_before.with_offline([1])
        result = gradual_migration(toy_evaluator, toy_network,
                                   c_before, c_after, [1],
                                   GradualSettings(target_step_db=5.0))
        assert result.final_config == c_after
        assert result.min_utility >= result.floor_utility - 1e-9

    def test_gradual_single_giant_step(self, toy_evaluator, toy_network):
        """A ramp step bigger than the whole power range degenerates to
        (at most) two transitions without violating invariants."""
        from repro.core.joint import tune_joint
        c_before = toy_network.planned_configuration()
        baseline = toy_evaluator.state_of(c_before)
        plan = tune_joint(toy_evaluator, toy_network,
                          c_before.with_offline([1]), baseline, [1])
        result = gradual_migration(toy_evaluator, toy_network,
                                   c_before, plan.final_config, [1],
                                   GradualSettings(target_step_db=100.0))
        assert result.final_config == plan.final_config
        assert result.min_utility >= result.floor_utility - 1e-9


class TestEvaluatorIsolation:
    def test_parallel_evaluators_do_not_interfere(self, toy_engine,
                                                  toy_network,
                                                  toy_density):
        """Two evaluators over the same engine stay consistent — the
        engine is stateless apart from instrumentation."""
        a = Evaluator(toy_engine, toy_density, "performance")
        b = Evaluator(toy_engine, toy_density * 2.0, "performance")
        config = toy_network.planned_configuration()
        fa1 = a.utility_of(config)
        fb = b.utility_of(config)
        fa2 = a.utility_of(config)
        assert fa1 == fa2
        assert fb != fa1
