"""Sparse region-of-influence evaluation (PR 10).

The windowed engine's contract is *bitwise* agreement with the dense
path: footprint boxes bound exactly the nonzero gain cells, and every
scoring route — delta snapshots, batched candidate scoring, the
process pool — produces identical floats with ROI windows on or off.
The property tests below drive random perturbation chains through a
clipped backend (floor high enough that windows are genuinely small on
the toy grid) and through every fallback trigger (unclipped dicts,
azimuth offsets, full-grid footprints, custom utilities).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.evaluation import Evaluator
from repro.core.utility import PerformanceUtility, UtilityFunction
from repro.model.engine import AnalysisEngine
from repro.model.linkrate import LinkAdaptation
from repro.model.pathloss import (DEFAULT_CLIP_FLOOR_DB, PathLossDatabase,
                                  plane_footprint)
from repro.model.plossdb import load_packed, save_packed
from repro.model.propagation import Environment
from repro.model.roi import (EMPTY_BOX, RoiBaseline, box_area,
                             box_is_empty, box_union)
from repro.obs import MetricsRegistry, set_registry
from repro.obs.report import RunReport

from conftest import make_sectors
from test_delta_engine import _MOVES, _apply_move, _assert_states_equal

_UTILITY = PerformanceUtility()

#: On the 20x20 toy grid the default -150 dB floor leaves every
#: footprint covering the whole grid (so ROI would only ever fall
#: back); -110 dB shrinks the boxes to ~20-35% of the grid, which is
#: the regime the windowed kernels must be exercised in.
_FLOOR = -110.0


def _clipped_pathloss(toy_grid, toy_network,
                      floor=_FLOOR) -> PathLossDatabase:
    return PathLossDatabase.from_environment(
        toy_network, Environment.flat(toy_grid),
        shadowing_sigma_db=0.0, seed=0, clip_floor_db=floor)


@pytest.fixture
def clipped_pathloss(toy_grid, toy_network) -> PathLossDatabase:
    return _clipped_pathloss(toy_grid, toy_network)


@pytest.fixture
def roi_engine(clipped_pathloss) -> AnalysisEngine:
    return AnalysisEngine(clipped_pathloss, link=LinkAdaptation(), roi=True)


@pytest.fixture
def dense_engine(toy_grid, toy_network) -> AnalysisEngine:
    """A dense comparator over an identical (but separate) database."""
    return AnalysisEngine(_clipped_pathloss(toy_grid, toy_network),
                          link=LinkAdaptation(), roi=False)


@pytest.fixture
def density(roi_engine, toy_network) -> np.ndarray:
    from repro.model.load import uniform_per_sector_density
    baseline = roi_engine.evaluate(toy_network.planned_configuration(),
                                   np.zeros(roi_engine.grid.shape))
    return uniform_per_sector_density(baseline, 90.0)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


def _candidate_fan(network, base):
    """One candidate per knob per sector (all single-sector changes)."""
    out = []
    for s in range(network.n_sectors):
        spec = network.sector(s)
        out.append(base.with_power(s, max(base.power_dbm(s) - 3.0,
                                          spec.min_power_dbm)))
        out.append(base.with_tilt(s, min(base.tilt_deg(s) + 2.0,
                                         spec.tilt_range.max_deg)))
        if base.is_active(s):
            out.append(base.with_offline([s]))
    return out


# ----------------------------------------------------------------------
class TestFootprints:
    """The v3 boxes bound exactly the nonzero cells of each plane."""

    def test_boxes_tight_and_exact(self, clipped_pathloss, toy_network):
        for s in range(toy_network.n_sectors):
            for tilt in toy_network.sector(s).tilt_range.settings:
                box = clipped_pathloss.footprint(s, tilt)
                plane = clipped_pathloss.gain_matrix_mw(s, tilt)
                rows, cols = np.nonzero(plane)
                assert rows.size, "clipped toy plane unexpectedly empty"
                assert box == (int(rows.min()), int(rows.max()) + 1,
                               int(cols.min()), int(cols.max()) + 1)
                r0, r1, c0, c1 = box
                outside = plane.copy()
                outside[r0:r1, c0:c1] = 0.0
                assert not outside.any()

    def test_unclipped_dict_returns_none(self, toy_pathloss):
        assert toy_pathloss.clip_floor_db is None
        assert toy_pathloss.footprint(0, 8.0) is None

    def test_azimuth_offset_returns_none(self, clipped_pathloss):
        tilt = clipped_pathloss.network.sector(0).tilt_range.normal_deg
        assert clipped_pathloss.footprint(0, tilt) is not None
        assert clipped_pathloss.footprint(
            0, tilt, azimuth_offset_deg=10.0) is None

    def test_packed_table_matches_dict_scan(self, tmp_path, toy_grid,
                                            toy_network, clipped_pathloss):
        path = str(tmp_path / "toy.plossdb")
        save_packed(clipped_pathloss, path)
        loaded = load_packed(path)
        assert loaded.clip_floor_db == _FLOOR
        for s in range(toy_network.n_sectors):
            for tilt in loaded.packed_store.tilt_values:
                want = clipped_pathloss.footprint(s, tilt)
                # Packed planes are the same float32 quantization the
                # dict path clips, so the boxes agree exactly.
                assert loaded.footprint(s, tilt) == want

    def test_box_helpers(self):
        assert plane_footprint(np.zeros((4, 4))) == EMPTY_BOX
        assert box_is_empty(EMPTY_BOX)
        assert box_area(EMPTY_BOX) == 0
        a, b = (1, 3, 2, 5), (2, 6, 0, 3)
        assert box_union(a, EMPTY_BOX) == a
        assert box_union(EMPTY_BOX, b) == b
        assert box_union(a, b) == (1, 6, 0, 5)
        assert box_area(a) == 6


# ----------------------------------------------------------------------
class TestRoiDeltaParity:
    """Windowed evaluate_delta == full evaluate, bitwise."""

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(moves=_MOVES)
    def test_random_perturbation_chain(self, moves, roi_engine,
                                       toy_network, density):
        config = toy_network.planned_configuration()
        _, incumbent = roi_engine.evaluate_with_incumbent(config, density)
        for move in moves:
            new_config = _apply_move(toy_network, config, move)
            if new_config == config:
                config = new_config
                continue
            result = roi_engine.evaluate_delta(incumbent, new_config,
                                               density)
            assert result is not None
            state, incumbent = result
            _assert_states_equal(state,
                                 roi_engine.evaluate(new_config, density))
            config = new_config

    def test_windowed_path_taken(self, registry, roi_engine, toy_network,
                                 density):
        base = toy_network.planned_configuration()
        _, incumbent = roi_engine.evaluate_with_incumbent(base, density)
        trial = base.with_tilt(1, base.tilt_deg(1) + 2.0)
        roi_engine.evaluate_delta(incumbent, trial, density)
        snap = registry.snapshot()
        assert snap["magus.engine.roi_evaluations"]["value"] == 1
        assert snap["magus.engine.roi_cells"]["value"] > 0
        H, W = roi_engine.grid.shape
        assert snap["magus.engine.roi_cells"]["value"] < H * W

    def test_toggle_off_and_on(self, roi_engine, toy_network, density):
        base = toy_network.planned_configuration()
        _, incumbent = roi_engine.evaluate_with_incumbent(base, density)
        dark = base.with_offline([1])
        state, inc_dark = roi_engine.evaluate_delta(incumbent, dark,
                                                    density)
        _assert_states_equal(state, roi_engine.evaluate(dark, density))
        lit = dark.with_online([1])
        state, _ = roi_engine.evaluate_delta(inc_dark, lit, density)
        _assert_states_equal(state, roi_engine.evaluate(lit, density))

    def test_azimuth_move_falls_back_correctly(self, registry, roi_engine,
                                               toy_network, density):
        """Rotated patterns have no stored box — dense path, same result."""
        base = toy_network.planned_configuration()
        _, incumbent = roi_engine.evaluate_with_incumbent(base, density)
        turned = base.with_azimuth_offset(1, 10.0)
        state, _ = roi_engine.evaluate_delta(incumbent, turned, density)
        _assert_states_equal(state, roi_engine.evaluate(turned, density))
        snap = registry.snapshot()
        assert snap["magus.engine.roi_fallbacks"]["value"] == 1
        assert "magus.engine.roi_evaluations" not in snap


# ----------------------------------------------------------------------
class TestRoiScoreParity:
    """score_candidates: ROI on == ROI off, exact floats."""

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(moves=_MOVES)
    def test_random_candidates_bitwise(self, moves, roi_engine,
                                       dense_engine, toy_network, density):
        base = toy_network.planned_configuration()
        configs = []
        for move in moves:
            candidate = _apply_move(toy_network, base, move)
            if candidate != base:
                configs.append(candidate)
        if not configs:
            return
        roi_ev = Evaluator(roi_engine, density, "performance")
        dense_ev = Evaluator(dense_engine, density, "performance")
        assert roi_ev.utility_of(base) == dense_ev.utility_of(base)
        assert (roi_ev.score_candidates(configs)
                == dense_ev.score_candidates(configs))

    def test_windowed_path_taken(self, registry, roi_engine, toy_network,
                                 density):
        base = toy_network.planned_configuration()
        evaluator = Evaluator(roi_engine, density, "performance")
        evaluator.utility_of(base)
        candidates = _candidate_fan(toy_network, base)
        evaluator.score_candidates(candidates)
        snap = registry.snapshot()
        assert (snap["magus.engine.roi_evaluations"]["value"]
                == len(candidates))

    def test_packed_backend_bitwise(self, tmp_path, toy_grid, toy_network,
                                    clipped_pathloss, registry):
        path = str(tmp_path / "toy.plossdb")
        save_packed(clipped_pathloss, path)
        roi_db, dense_db = load_packed(path), load_packed(path)
        roi_eng = AnalysisEngine(roi_db, link=LinkAdaptation(), roi=True)
        dense_eng = AnalysisEngine(dense_db, link=LinkAdaptation(),
                                   roi=False)
        base = toy_network.planned_configuration()
        from repro.model.load import uniform_per_sector_density
        density = uniform_per_sector_density(
            roi_eng.evaluate(base, np.zeros(roi_eng.grid.shape)), 90.0)
        roi_ev = Evaluator(roi_eng, density, "performance")
        dense_ev = Evaluator(dense_eng, density, "performance")
        assert roi_ev.utility_of(base) == dense_ev.utility_of(base)
        candidates = _candidate_fan(toy_network, base)
        assert (roi_ev.score_candidates(candidates)
                == dense_ev.score_candidates(candidates))
        snap = registry.snapshot()
        assert snap["magus.engine.roi_evaluations"]["value"] > 0

    def test_custom_utility_exact(self, registry, roi_engine,
                                  toy_network, density):
        """A non-additive utility skips the partial-sum scorer (no
        batch path), but the windowed delta underneath ``utility_of``
        builds the full state, so any ``evaluate`` override stays
        exact."""
        class WorstGrid(UtilityFunction):
            name = "worst-grid"

            def per_ue(self, rate_bps):
                return np.asarray(rate_bps, dtype=float)

            def evaluate(self, state):   # non-additive
                return float(state.rate_bps.min())

        evaluator = Evaluator(roi_engine, density, WorstGrid())
        assert not evaluator._batchable()
        base = toy_network.planned_configuration()
        evaluator.utility_of(base)
        candidates = [base.with_power(0, 38.0)]
        scores = evaluator.score_candidates(candidates)
        assert scores == [evaluator.utility_of(candidates[0])]
        assert ("magus.engine.batched_candidates"
                not in registry.snapshot())

    def test_plans_agree_with_and_without_roi(self, roi_engine,
                                              dense_engine, toy_network,
                                              density):
        from repro.core.magus import Magus
        plans = {}
        for name, engine in (("roi", roi_engine), ("dense", dense_engine)):
            magus = Magus(toy_network, engine, density)
            plans[name] = magus.plan_mitigation([1], tuning="joint")
        assert plans["roi"].c_after == plans["dense"].c_after
        assert plans["roi"].f_after == plans["dense"].f_after


# ----------------------------------------------------------------------
class TestRoiParallelParity:
    """The pool ships ROI baselines; results stay bitwise-serial."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_scores_bitwise(self, workers, registry, roi_engine,
                                 dense_engine, toy_network, density):
        base = toy_network.planned_configuration()
        candidates = _candidate_fan(toy_network, base)
        serial = Evaluator(dense_engine, density, _UTILITY)
        serial.utility_of(base)
        want = serial.score_candidates(candidates)
        with Evaluator(roi_engine, density, _UTILITY,
                       strategy="parallel", workers=workers,
                       min_parallel_batch=2) as pooled:
            pooled.utility_of(base)
            got = pooled.score_candidates(candidates)
        assert got == want
        snap = registry.snapshot()
        assert snap["magus.engine.roi_evaluations"]["value"] > 0

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(moves=_MOVES)
    def test_random_chain_bitwise(self, moves, roi_engine, dense_engine,
                                  toy_network, density):
        config = toy_network.planned_configuration()
        for move in moves:
            config = _apply_move(toy_network, config, move)
        candidates = _candidate_fan(toy_network, config)
        serial = Evaluator(dense_engine, density, _UTILITY)
        serial.utility_of(config)
        want = serial.score_candidates(candidates)
        with Evaluator(roi_engine, density, _UTILITY,
                       strategy="parallel", workers=2,
                       min_parallel_batch=2) as pooled:
            pooled.utility_of(config)
            assert pooled.score_candidates(candidates) == want


# ----------------------------------------------------------------------
class TestRoiFallbacks:
    """Every trigger degrades to the dense path, never to a wrong answer."""

    def test_unclipped_dict_always_falls_back(self, registry, toy_engine,
                                              toy_network, toy_density):
        assert toy_engine.roi           # default-on ...
        evaluator = Evaluator(toy_engine, toy_density, "performance")
        base = toy_network.planned_configuration()
        evaluator.utility_of(base)
        candidates = _candidate_fan(toy_network, base)
        scores = evaluator.score_candidates(candidates)
        reference = [evaluator.utility_of(c) for c in candidates]
        assert scores == reference
        snap = registry.snapshot()
        # ... but footprints are unavailable, so nothing is windowed.
        assert "magus.engine.roi_evaluations" not in snap
        assert snap["magus.engine.roi_fallbacks"]["value"] > 0

    def test_full_grid_footprint_falls_back(self, registry, toy_grid,
                                            toy_network):
        """At the -150 dB default floor the toy boxes cover the grid —
        the roi_max_fraction guard must route every candidate densely."""
        db = _clipped_pathloss(toy_grid, toy_network,
                               floor=DEFAULT_CLIP_FLOOR_DB)
        H, W = db.grid.shape
        tilt = toy_network.sector(0).tilt_range.normal_deg
        assert box_area(db.footprint(0, tilt)) == H * W
        engine = AnalysisEngine(db, link=LinkAdaptation(), roi=True)
        from repro.model.load import uniform_per_sector_density
        base = toy_network.planned_configuration()
        density = uniform_per_sector_density(
            engine.evaluate(base, np.zeros(engine.grid.shape)), 90.0)
        evaluator = Evaluator(engine, density, "performance")
        evaluator.utility_of(base)
        candidates = _candidate_fan(toy_network, base)
        scores = evaluator.score_candidates(candidates)
        assert scores == [evaluator.utility_of(c) for c in candidates]
        snap = registry.snapshot()
        assert "magus.engine.roi_evaluations" not in snap
        assert snap["magus.engine.roi_fallbacks"]["value"] > 0

    def test_roi_opt_out(self, registry, roi_engine, toy_network, density):
        evaluator = Evaluator(roi_engine, density, "performance",
                              roi=False)
        assert not roi_engine.roi       # the knob lands on the engine
        base = toy_network.planned_configuration()
        evaluator.utility_of(base)
        evaluator.score_candidates(_candidate_fan(toy_network, base))
        snap = registry.snapshot()
        assert not any("roi" in name for name in snap)

    def test_roi_default_leaves_engine_setting(self, roi_engine, density):
        Evaluator(roi_engine, density, "performance")        # roi=None
        assert roi_engine.roi
        Evaluator(roi_engine, density, "performance", roi=True)
        assert roi_engine.roi

    def test_baseline_requires_anchored_state(self, roi_engine,
                                              toy_network, density):
        _, incumbent = roi_engine.evaluate_with_incumbent(
            toy_network.planned_configuration(), density)
        baseline = RoiBaseline.from_incumbent(incumbent, _UTILITY, density)
        assert baseline is not None
        incumbent.state = None          # e.g. a worker-attached incumbent
        assert RoiBaseline.from_incumbent(incumbent, _UTILITY,
                                          density) is None


# ----------------------------------------------------------------------
class TestRoiReport:
    def test_report_has_roi_section(self, registry, roi_engine,
                                    toy_network, density):
        evaluator = Evaluator(roi_engine, density, "performance")
        base = toy_network.planned_configuration()
        evaluator.utility_of(base)
        evaluator.score_candidates(_candidate_fan(toy_network, base))
        report = RunReport.from_registry("test", registry=registry)
        roi = report.roi_metrics()
        assert roi["magus.engine.roi_evaluations"] > 0
        assert "roi:" in report.to_table()

    def test_report_omits_empty_roi_section(self, registry):
        report = RunReport.from_registry("test", registry=registry)
        assert report.roi_metrics() == {}
        assert "roi:" not in report.to_table()
