"""Tests for upgrade-window scheduling against the diurnal profile."""

import datetime as dt

import numpy as np
import pytest

from repro.upgrades.scheduling import (DiurnalLoadProfile,
                                       MaintenanceWindow,
                                       SchedulingConstraints,
                                       UpgradeScheduler,
                                       estimate_window_impact)

MONDAY = dt.datetime(2015, 6, 1)          # a Monday


@pytest.fixture
def profile():
    return DiurnalLoadProfile.typical()


class TestDiurnalProfile:
    def test_normalized_mean(self, profile):
        assert np.mean(profile.hourly) == pytest.approx(1.0)

    def test_busy_hour_above_overnight(self, profile):
        overnight = profile.load_at(MONDAY.replace(hour=3))
        evening = profile.load_at(MONDAY.replace(hour=19))
        assert evening > 3.0 * overnight

    def test_weekend_discount(self, profile):
        weekday_noon = profile.load_at(MONDAY.replace(hour=12))
        saturday_noon = profile.load_at(
            (MONDAY + dt.timedelta(days=5)).replace(hour=12))
        assert saturday_noon < weekday_noon

    def test_window_load_averages(self, profile):
        start = MONDAY.replace(hour=2)
        hours = [profile.load_at(start + dt.timedelta(hours=i))
                 for i in range(4)]
        assert profile.window_load(start, 4.0) == pytest.approx(
            np.mean(hours))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalLoadProfile(hourly=(1.0,) * 10)
        with pytest.raises(ValueError):
            DiurnalLoadProfile(hourly=(-1.0,) * 168)
        with pytest.raises(ValueError):
            DiurnalLoadProfile.typical().window_load(MONDAY, 0.0)


class TestImpactEstimate:
    def test_scales_with_load_and_duration(self, profile):
        night = MaintenanceWindow(MONDAY.replace(hour=2), 4.0)
        day = MaintenanceWindow(MONDAY.replace(hour=17), 4.0)
        assert estimate_window_impact(100.0, profile, day) > \
            2.0 * estimate_window_impact(100.0, profile, night)
        short = MaintenanceWindow(MONDAY.replace(hour=2), 2.0)
        assert estimate_window_impact(100.0, profile, night) > \
            estimate_window_impact(100.0, profile, short)

    def test_negative_degradation_rejected(self, profile):
        with pytest.raises(ValueError):
            estimate_window_impact(-1.0, profile,
                                   MaintenanceWindow(MONDAY, 4.0))


class TestScheduler:
    def _constraints(self, vendor=None):
        return SchedulingConstraints(
            earliest=MONDAY,
            latest=MONDAY + dt.timedelta(days=7),
            vendor_hours=vendor)

    def test_unconstrained_picks_the_valley(self):
        scheduler = UpgradeScheduler()
        decision = scheduler.schedule(100.0, 4.0, self._constraints())
        assert decision.window.start.hour < 6 or \
            decision.window.start.hour >= 23
        assert decision.regret == pytest.approx(0.0, abs=1e-9)

    def test_vendor_constraint_costs_regret(self):
        scheduler = UpgradeScheduler()
        constrained = scheduler.schedule(
            100.0, 4.0, self._constraints(vendor=(9, 17)))
        assert 9 <= constrained.window.start.hour < 17
        assert constrained.regret > 0.0
        # The residual impact is what Magus is for.
        assert constrained.expected_impact > \
            constrained.best_possible_impact

    def test_weekend_preferred_under_daytime_constraint(self):
        """With daytime-only vendors, the cheapest daytime hours are on
        the discounted weekend."""
        scheduler = UpgradeScheduler()
        decision = scheduler.schedule(
            100.0, 4.0, self._constraints(vendor=(9, 17)))
        assert decision.window.start.weekday() >= 5

    def test_no_window_raises(self):
        scheduler = UpgradeScheduler()
        bad = SchedulingConstraints(
            earliest=MONDAY, latest=MONDAY - dt.timedelta(days=1))
        with pytest.raises(ValueError):
            scheduler.schedule(100.0, 4.0, bad)

    def test_candidate_windows_respect_step(self):
        scheduler = UpgradeScheduler()
        constraints = SchedulingConstraints(
            earliest=MONDAY, latest=MONDAY + dt.timedelta(hours=6),
            step_hours=2)
        windows = scheduler.candidate_windows(constraints, 4.0)
        assert len(windows) == 4
        assert all((w.start - MONDAY).total_seconds() % 7200 == 0
                   for w in windows)
