"""Unit tests for Algorithm 1 (heuristic power tuning)."""

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.plan import Parameter
from repro.core.search import PowerSearchSettings, tune_power


@pytest.fixture
def outage(toy_evaluator, toy_network):
    c_before = toy_network.planned_configuration()
    baseline = toy_evaluator.state_of(c_before)
    c_upgrade = c_before.with_offline([1])
    return c_before, c_upgrade, baseline


class TestAlgorithm1:
    def test_improves_utility(self, toy_evaluator, toy_network, outage):
        _, c_upgrade, baseline = outage
        result = tune_power(toy_evaluator, toy_network, c_upgrade,
                            baseline, [1])
        assert result.final_utility >= result.initial_utility
        assert result.initial_utility == pytest.approx(
            toy_evaluator.utility_of(c_upgrade))

    def test_only_tunes_neighbor_power(self, toy_evaluator, toy_network,
                                       outage):
        _, c_upgrade, baseline = outage
        result = tune_power(toy_evaluator, toy_network, c_upgrade,
                            baseline, [1])
        for change in result.changes():
            assert change.parameter is Parameter.POWER
            assert change.sector_id != 1           # never the target
            assert change.new_value > change.old_value

    def test_respects_power_caps(self, toy_evaluator, toy_network, outage):
        _, c_upgrade, baseline = outage
        result = tune_power(toy_evaluator, toy_network, c_upgrade,
                            baseline, [1],
                            PowerSearchSettings(max_unit_db=20.0,
                                                max_iterations=50))
        for sid in range(toy_network.n_sectors):
            assert result.final_config.power_dbm(sid) <= \
                toy_network.sector(sid).max_power_dbm + 1e-9

    def test_utility_trace_monotone(self, toy_evaluator, toy_network,
                                    outage):
        _, c_upgrade, baseline = outage
        result = tune_power(toy_evaluator, toy_network, c_upgrade,
                            baseline, [1])
        trace = result.utility_trace()
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_max_iterations_respected(self, toy_evaluator, toy_network,
                                      outage):
        _, c_upgrade, baseline = outage
        result = tune_power(toy_evaluator, toy_network, c_upgrade,
                            baseline, [1],
                            PowerSearchSettings(max_iterations=1))
        assert result.n_steps <= 1

    def test_no_degradation_terminates_recovered(self, toy_evaluator,
                                                 toy_network):
        """If the start state already matches the baseline, G is empty."""
        c = toy_network.planned_configuration()
        baseline = toy_evaluator.state_of(c)
        result = tune_power(toy_evaluator, toy_network, c, baseline, [1])
        assert result.termination == "recovered"
        assert result.n_steps == 0

    def test_target_already_offline_is_never_candidate(
            self, toy_evaluator, toy_network, outage):
        _, c_upgrade, baseline = outage
        result = tune_power(toy_evaluator, toy_network, c_upgrade,
                            baseline, [1])
        assert not result.final_config.is_active(1)


class TestPrefilterAblation:
    @pytest.mark.parametrize("prefilter", ["sinr", "rate", "none"])
    def test_all_modes_improve(self, toy_engine, toy_density, toy_network,
                               prefilter):
        ev = Evaluator(toy_engine, toy_density)
        c_before = toy_network.planned_configuration()
        baseline = ev.state_of(c_before)
        c_upgrade = c_before.with_offline([1])
        result = tune_power(ev, toy_network, c_upgrade, baseline, [1],
                            PowerSearchSettings(prefilter=prefilter))
        assert result.final_utility >= result.initial_utility

    def test_sinr_prefilter_spends_no_more_evaluations(
            self, toy_engine, toy_density, toy_network):
        results = {}
        for prefilter in ("sinr", "none"):
            ev = Evaluator(toy_engine, toy_density)
            c_before = toy_network.planned_configuration()
            baseline = ev.state_of(c_before)
            result = tune_power(ev, toy_network,
                                c_before.with_offline([1]), baseline, [1],
                                PowerSearchSettings(prefilter=prefilter))
            results[prefilter] = (result.total_evaluations,
                                  result.final_utility)
        # Same steps cost at most as many model calls with the filter.
        assert results["sinr"][0] <= results["none"][0]
