"""Unit tests for NetworkState views and the degraded-grid set."""

import numpy as np
import pytest


@pytest.fixture
def states(toy_engine, toy_network, toy_density):
    c_before = toy_network.planned_configuration()
    before = toy_engine.evaluate(c_before, toy_density)
    after = toy_engine.evaluate(c_before.with_offline([1]), toy_density)
    return before, after


class TestCoverageViews:
    def test_masks_complement(self, states):
        before, _ = states
        assert np.array_equal(before.covered_mask(),
                              ~before.out_of_service_mask())

    def test_ue_counts(self, states):
        before, _ = states
        assert before.total_ue_count() == pytest.approx(
            before.ue_density.sum())
        assert before.covered_ue_count() <= before.total_ue_count()

    def test_outage_reduces_covered_ues(self, states):
        before, after = states
        assert after.covered_ue_count() <= before.covered_ue_count()


class TestSectorViews:
    def test_served_grid_count_sums(self, states):
        before, _ = states
        total = sum(before.served_grid_count(s)
                    for s in before.config.active_sector_ids())
        assert total == int((before.serving >= 0).sum())

    def test_sector_loads_sum_to_served_population(self, states):
        before, _ = states
        loads = before.sector_loads()
        served_pop = before.ue_density[before.serving >= 0].sum()
        assert sum(loads.values()) == pytest.approx(served_pop)

    def test_offline_sector_not_in_loads(self, states):
        _, after = states
        assert 1 not in after.sector_loads()
        assert after.served_ue_count(1) == 0.0


class TestDegradedGrids:
    def test_self_comparison_empty(self, states):
        before, _ = states
        assert not before.degraded_grids(before).any()

    def test_outage_degrades_target_footprint(self, states):
        before, after = states
        degraded = after.degraded_grids(before)
        target_footprint = before.serving == 1
        # Most of the lost sector's grids see worse rates.
        overlap = (degraded & target_footprint).sum()
        assert overlap > 0.5 * target_footprint.sum()

    def test_degradation_is_directional(self, states):
        before, after = states
        # Grids whose rate improved (less interference) do not count.
        improved = after.rate_bps > before.rate_bps
        degraded = after.degraded_grids(before)
        assert not np.any(improved & degraded)


class TestSummaries:
    def test_mean_rate_weighted(self, states):
        before, _ = states
        manual = (before.rate_bps * before.ue_density).sum() \
            / before.ue_density.sum()
        assert before.mean_rate_bps() == pytest.approx(manual)

    def test_mean_rate_empty_population(self, toy_engine, toy_network):
        state = toy_engine.evaluate(toy_network.planned_configuration(),
                                    np.zeros(toy_engine.grid.shape))
        assert state.mean_rate_bps() == 0.0

    def test_describe_mentions_counts(self, states):
        before, _ = states
        text = "\n".join(before.describe())
        assert "sectors active: 3/3" in text
        assert "mean UE rate" in text
