"""Tests for the synthetic data generators (rng, terrain, placement,
users, calendar)."""

import numpy as np
import pytest

from repro.model.geometry import GridSpec, Region
from repro.model.propagation import ClutterClass
from repro.synthetic.calendar import (UpgradeCalendarGenerator,
                                      duration_stats, weekday_histogram)
from repro.synthetic.placement import (AreaType, PlacementParameters,
                                       build_network, place_sites)
from repro.synthetic.rng import stream, substream
from repro.synthetic.terrain import (TerrainParameters, generate_clutter,
                                     generate_environment, generate_terrain)
from repro.synthetic.users import (MEAN_UES_PER_SECTOR, population_field,
                                   sector_ue_counts)


class TestRngStreams:
    def test_same_label_same_stream(self):
        a = stream(7, "terrain").standard_normal(5)
        b = stream(7, "terrain").standard_normal(5)
        assert np.array_equal(a, b)

    def test_labels_independent(self):
        a = stream(7, "terrain").standard_normal(5)
        b = stream(7, "clutter").standard_normal(5)
        assert not np.array_equal(a, b)

    def test_substream_indices(self):
        a = substream(7, "shadowing", 0).standard_normal(3)
        b = substream(7, "shadowing", 1).standard_normal(3)
        assert not np.array_equal(a, b)


class TestTerrain:
    @pytest.fixture
    def grid(self):
        return GridSpec(Region.square(8_000.0), cell_size=200.0)

    def test_terrain_range(self, grid):
        params = TerrainParameters(relief_m=100.0)
        t = generate_terrain(grid, params, seed=1)
        assert t.shape == grid.shape
        assert t.min() >= 0.0
        assert t.max() <= 2 * params.relief_m   # roughly relief-scaled

    def test_clutter_rings(self, grid):
        params = TerrainParameters(urban_core_radius_m=1_000.0,
                                   suburban_radius_m=3_000.0)
        terrain = generate_terrain(grid, params, seed=1)
        clutter = generate_clutter(grid, terrain, params, seed=1)
        cx, cy = grid.region.center
        center_cell = grid.cell_of(cx, cy)
        assert clutter[center_cell] == int(ClutterClass.DENSE_URBAN)
        corner_cell = (0, 0)
        assert clutter[corner_cell] in (int(ClutterClass.OPEN),
                                        int(ClutterClass.FOREST),
                                        int(ClutterClass.WATER))

    def test_environment_reproducible(self, grid):
        a = generate_environment(grid, seed=3)
        b = generate_environment(grid, seed=3)
        assert np.array_equal(a.terrain_m, b.terrain_m)
        assert np.array_equal(a.clutter, b.clutter)

    def test_forest_fraction_respected(self, grid):
        params = TerrainParameters(forest_fraction=0.4,
                                   urban_core_radius_m=200.0,
                                   suburban_radius_m=400.0,
                                   water_fraction=0.0)
        terrain = generate_terrain(grid, params, seed=2)
        clutter = generate_clutter(grid, terrain, params, seed=2)
        frac = (clutter == int(ClutterClass.FOREST)).mean()
        # City rings carve into forest, so <= the target, but nonzero.
        assert 0.05 < frac <= 0.45


class TestPlacement:
    def test_isd_controls_density(self):
        region = Region.square(8_000.0)
        rural = place_sites(region, PlacementParameters.for_area(
            AreaType.RURAL), seed=0)
        urban = place_sites(region, PlacementParameters.for_area(
            AreaType.URBAN), seed=0)
        assert len(urban) > 5 * len(rural)

    def test_sites_inside_region(self):
        region = Region.square(6_000.0)
        for area in AreaType:
            for x, y in place_sites(
                    region, PlacementParameters.for_area(area), seed=1):
                assert region.contains(x, y)

    def test_tri_sector_structure(self):
        net = build_network(Region.square(6_000.0), AreaType.SUBURBAN,
                            seed=0)
        assert net.n_sectors % 3 == 0
        for site in net.sites.values():
            assert site.n_sectors == 3
            azs = sorted(net.sector(s).azimuth_deg
                         for s in site.sector_ids)
            assert azs[1] - azs[0] == pytest.approx(120.0)

    def test_region_too_small(self):
        with pytest.raises(ValueError):
            build_network(Region.square(500.0), AreaType.RURAL, seed=0)

    def test_area_defaults_ordering(self):
        r = PlacementParameters.for_area(AreaType.RURAL)
        s = PlacementParameters.for_area(AreaType.SUBURBAN)
        u = PlacementParameters.for_area(AreaType.URBAN)
        assert r.isd_m > s.isd_m > u.isd_m
        assert r.power_dbm > u.power_dbm
        assert r.mast_height_m > u.mast_height_m


class TestUsers:
    def test_sector_counts_positive_and_scaled(self, small_area):
        counts = sector_ue_counts(small_area.network, AreaType.SUBURBAN,
                                  seed=1)
        values = np.asarray(list(counts.values()))
        assert np.all(values > 0)
        mean = MEAN_UES_PER_SECTOR[AreaType.SUBURBAN]
        assert 0.5 * mean < values.mean() < 2.0 * mean

    def test_population_field_follows_clutter(self):
        grid = GridSpec(Region.square(4_000.0), cell_size=200.0)
        clutter = np.full(grid.shape, int(ClutterClass.OPEN), dtype=np.int8)
        clutter[:, : grid.n_cols // 2] = int(ClutterClass.DENSE_URBAN)
        field = population_field(grid, clutter, seed=0, n_hotspots=0)
        urban_mean = field[:, : grid.n_cols // 2].mean()
        open_mean = field[:, grid.n_cols // 2:].mean()
        assert urban_mean > 10 * open_mean

    def test_population_field_nonnegative(self):
        grid = GridSpec(Region.square(4_000.0), cell_size=200.0)
        clutter = np.zeros(grid.shape, dtype=np.int8)
        field = population_field(grid, clutter, seed=0)
        assert np.all(field >= 0.0)

    def test_shape_validation(self):
        grid = GridSpec(Region.square(4_000.0), cell_size=200.0)
        with pytest.raises(ValueError):
            population_field(grid, np.zeros((2, 2), dtype=np.int8))


class TestCalendar:
    @pytest.fixture(scope="class")
    def tickets(self):
        return UpgradeCalendarGenerator(n_sites=200, seed=0).generate()

    def test_every_day_has_upgrades(self, tickets):
        days = {t.start.date() for t in tickets}
        assert len(days) == 365          # 2015 is not a leap year

    def test_tue_fri_skew(self, tickets):
        hist = weekday_histogram(tickets)
        tue_fri = sum(hist[d] for d in ("Tue", "Wed", "Thu", "Fri")) / 4.0
        others = sum(hist[d] for d in ("Mon", "Sat", "Sun")) / 3.0
        assert tue_fri > 2.0 * others    # "more than twice as likely"

    def test_durations_mostly_4_to_6(self, tickets):
        stats = duration_stats(tickets)
        assert 4.0 <= stats["median_hours"] <= 6.0
        assert stats["fraction_4_to_6h"] > 0.75

    def test_sorted_by_start(self, tickets):
        starts = [t.start for t in tickets]
        assert starts == sorted(starts)

    def test_busy_hour_overlap_flag(self, tickets):
        import datetime as dt
        overnight = next(t for t in tickets if t.start.hour < 3
                         and t.duration_hours < 5.0)
        assert not overnight.overlaps_busy_hours()
        daytime = next(t for t in tickets if 9 <= t.start.hour <= 12)
        assert daytime.overlaps_busy_hours()

    def test_reproducible(self):
        a = UpgradeCalendarGenerator(n_sites=50, seed=2).generate()
        b = UpgradeCalendarGenerator(n_sites=50, seed=2).generate()
        assert [(t.start, t.site_id) for t in a[:20]] == \
            [(t.start, t.site_id) for t in b[:20]]

    def test_validation(self):
        with pytest.raises(ValueError):
            UpgradeCalendarGenerator(n_sites=0)
        with pytest.raises(ValueError):
            UpgradeCalendarGenerator(mean_tickets_per_day=0.0)
