"""Cross-process telemetry (PR 6).

Covers the snapshot/merge bridge between worker processes and the
parent registry (order-independence and sum-exactness of counter
merging, bounded timer-ring folding, RLock safety under concurrent
merges), the span transport and Chrome trace-event exporter, the
bounded flight recorder with exactly-once flushing, and — end to end —
the acceptance criterion: a ``workers=2`` parallel run whose labeled
``magus.engine.evaluations`` entries sum to exactly the serial count,
with at least one adopted span per participating worker process.
"""

from __future__ import annotations

import json
import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import Evaluator
from repro.core.utility import PerformanceUtility
from repro.obs import (FLIGHT_SCHEMA, NULL_FLIGHT_RECORDER, FlightRecorder,
                       MetricsRegistry, NullFlightRecorder,
                       get_flight_recorder, labeled_metric,
                       set_flight_recorder, split_metric_label, trace,
                       use_flight_recorder, use_registry)
from repro.obs.telemetry import (WorkerTelemetry, chrome_trace_events,
                                 drain_worker_telemetry, export_chrome_trace,
                                 merge_worker_telemetry, span_from_payload,
                                 span_payload, validate_chrome_trace,
                                 worker_label)
from repro.obs.tracer import Span, Tracer
from repro.parallel import EvaluationService

_UTILITY = PerformanceUtility()


# ----------------------------------------------------------------------
class TestLabeledNames:
    def test_roundtrip(self):
        name = labeled_metric("magus.engine.evaluations", "pid=7,worker=2")
        assert name == "magus.engine.evaluations{pid=7,worker=2}"
        assert split_metric_label(name) == ("magus.engine.evaluations",
                                            "pid=7,worker=2")

    def test_unlabeled_passthrough(self):
        assert split_metric_label("magus.parallel.tasks") == \
            ("magus.parallel.tasks", None)

    def test_worker_label_format(self):
        assert worker_label(123, 4) == "pid=123,worker=4"


# ----------------------------------------------------------------------
def _counter_capture(values) -> dict:
    """One worker's capture: a registry with ``c`` incremented per value."""
    registry = MetricsRegistry()
    counter = registry.counter("c")
    for value in values:
        counter.inc(value)
    return registry.capture()


class TestCaptureMerge:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=10_000),
                             min_size=1, max_size=6),
                    min_size=1, max_size=6))
    def test_counter_merge_is_sum_exact_and_order_independent(
            self, worker_values):
        captures = [(worker_label(1000 + i, i), _counter_capture(values))
                    for i, values in enumerate(worker_values)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for label, capture in captures:
            forward.merge_capture(capture, label=label)
        for label, capture in reversed(captures):
            backward.merge_capture(capture, label=label)
        for registry in (forward, backward):
            total = 0
            for i, values in enumerate(worker_values):
                name = labeled_metric("c", worker_label(1000 + i, i))
                assert registry.counter(name).value == sum(values)
                total += registry.counter(name).value
            assert total == sum(sum(v) for v in worker_values)
            # The unlabeled parent counter is untouched by labeled merges.
            assert registry.counter("c").value == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=10_000),
                             min_size=1, max_size=4),
                    min_size=2, max_size=4))
    def test_repeated_chunks_from_one_worker_accumulate(self, chunks):
        """Per-chunk deltas from the same worker land on one entry."""
        registry = MetricsRegistry()
        label = worker_label(4242, 1)
        for chunk in chunks:
            registry.merge_capture(_counter_capture(chunk), label=label)
        assert registry.counter(labeled_metric("c", label)).value == \
            sum(sum(chunk) for chunk in chunks)

    def test_timer_merge_folds_within_ring_bounds(self):
        """Merged ring stays <= ring_size; count/total/min/max exact."""
        parent = MetricsRegistry()
        ring_size = parent.timer("t")._ring_size
        n_per_worker = ring_size // 2 + 500     # 2 workers overflow it
        for worker in range(2):
            registry = MetricsRegistry()
            timer = registry.timer("t")
            for i in range(n_per_worker):
                timer.observe_ns(1_000 + worker * n_per_worker + i)
            parent.merge_capture(registry.capture(),
                                 label=worker_label(worker, worker))
        merged_count = 0
        for worker in range(2):
            timer = parent.timer(labeled_metric(
                "t", worker_label(worker, worker)))
            state = timer.state()
            assert state["count"] == n_per_worker
            assert len(state["ring"]) <= ring_size
            assert state["min_ns"] == 1_000 + worker * n_per_worker
            assert state["max_ns"] == 999 + (worker + 1) * n_per_worker
            assert timer.percentile_ns(50) is not None
            merged_count += state["count"]
        assert merged_count == 2 * n_per_worker

    def test_timer_merge_onto_same_label_respects_ring_bound(self):
        parent = MetricsRegistry()
        ring_size = parent.timer("t")._ring_size
        label = worker_label(1, 1)
        total = 0
        for chunk in range(3):
            registry = MetricsRegistry()
            for i in range(ring_size):
                registry.timer("t").observe_ns(i + 1)
                total += i + 1
            parent.merge_capture(registry.capture(), label=label)
        state = parent.timer(labeled_metric("t", label)).state()
        assert state["count"] == 3 * ring_size
        assert state["total_ns"] == total
        assert len(state["ring"]) == ring_size

    def test_gauge_merge_folds_extrema(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5.0)
        capture = registry.capture()
        parent = MetricsRegistry()
        parent.gauge(labeled_metric("g", "pid=1,worker=1")).set(99.0)
        parent.merge_capture(capture, label="pid=1,worker=1")
        gauge = parent.gauge(labeled_metric("g", "pid=1,worker=1"))
        assert gauge.value == 5.0           # incoming value wins
        snapshot = gauge.snapshot()
        assert snapshot["min"] == 5.0
        assert snapshot["max"] == 99.0

    def test_concurrent_merges_are_exact(self):
        """merge_capture under the registry RLock: no lost updates."""
        parent = MetricsRegistry()
        label = worker_label(1, 1)
        threads, rounds, errors = 8, 50, []
        capture = _counter_capture([1])

        def merge_loop():
            try:
                for _ in range(rounds):
                    parent.merge_capture(capture, label=label)
            except Exception as exc:       # surfaced in the main thread
                errors.append(exc)

        workers = [threading.Thread(target=merge_loop)
                   for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert errors == []
        assert parent.counter(labeled_metric("c", label)).value == \
            threads * rounds

    def test_null_registry_never_captures_or_merges(self):
        from repro.obs import NULL_REGISTRY
        assert NULL_REGISTRY.capture() == {}
        NULL_REGISTRY.merge_capture(_counter_capture([3]), label="pid=1")
        assert NULL_REGISTRY.snapshot() == {}


# ----------------------------------------------------------------------
class TestWorkerTelemetry:
    def test_drain_is_capture_and_reset(self):
        with use_registry(MetricsRegistry()) as registry:
            registry.counter("magus.engine.evaluations").inc(7)
            payload = drain_worker_telemetry(busy_ns=123)
            assert payload.pid == os.getpid()
            assert payload.worker_id == 0          # not in a pool
            assert payload.busy_ns == 123
            assert payload.metrics[
                "magus.engine.evaluations"]["value"] == 7
            # The registry was reset: the next drain is an empty delta.
            assert drain_worker_telemetry().metrics == {}
            assert registry.counter("magus.engine.evaluations").value == 0

    def test_drain_under_null_registry_is_empty(self):
        payload = drain_worker_telemetry()
        assert payload.metrics == {}
        assert payload.spans == []

    def test_span_payload_roundtrip(self):
        root = Span("magus.parallel.score_chunk", tags={"chunk": 3})
        root.start_ns, root.end_ns = 100, 900
        child = Span("magus.engine.batch")
        child.start_ns, child.end_ns = 200, 700
        child.status, child.error = "error", "ValueError: boom"
        root.children.append(child)
        rebuilt = span_from_payload(span_payload(root))
        assert rebuilt.name == root.name
        assert rebuilt.tags == {"chunk": 3}
        assert (rebuilt.start_ns, rebuilt.end_ns) == (100, 900)
        assert len(rebuilt.children) == 1
        grand = rebuilt.children[0]
        assert (grand.status, grand.error) == ("error", "ValueError: boom")
        assert (grand.start_ns, grand.end_ns) == (200, 700)

    def test_merge_labels_metrics_and_adopts_spans(self):
        worker_registry = MetricsRegistry()
        worker_registry.counter("magus.engine.evaluations").inc(5)
        span = Span("magus.parallel.score_chunk")
        span.start_ns, span.end_ns = 10, 20
        payload = WorkerTelemetry(pid=999, worker_id=2,
                                  metrics=worker_registry.capture(),
                                  spans=[span_payload(span)])
        parent, tracer = MetricsRegistry(), Tracer()
        tracer.enable()
        merge_worker_telemetry(payload, registry=parent, tracer=tracer)
        name = labeled_metric("magus.engine.evaluations",
                              worker_label(999, 2))
        assert parent.counter(name).value == 5
        adopted = tracer.peek()
        assert len(adopted) == 1
        assert adopted[0].tags["pid"] == 999
        assert adopted[0].tags["worker"] == 2

    def test_reset_drops_inherited_open_spans(self):
        """Fork hygiene: a worker inherits the parent's *open* span
        stack; after reset, its own spans must finish as roots."""
        tracer = Tracer()
        tracer.enable()
        inherited = tracer.span("magus.tuning")
        inherited.__enter__()              # left open, as across a fork
        tracer.reset()
        with tracer.span("magus.parallel.score_chunk"):
            pass
        assert [s.name for s in tracer.peek()] == \
            ["magus.parallel.score_chunk"]

    def test_adoption_noop_when_tracing_disabled(self):
        span = Span("s")
        payload = WorkerTelemetry(pid=1, worker_id=1,
                                  spans=[span_payload(span)])
        tracer = Tracer()                  # disabled
        merge_worker_telemetry(payload, registry=MetricsRegistry(),
                               tracer=tracer)
        tracer.enable()
        assert tracer.peek() == []


# ----------------------------------------------------------------------
class TestChromeTrace:
    def _spans(self, parent_pid):
        parent = Span("magus.mitigate")
        parent.start_ns, parent.end_ns = 0, 5_000
        child = Span("magus.power_pass")
        child.start_ns, child.end_ns = 1_000, 4_000
        parent.children.append(child)
        worker = Span("magus.parallel.score_chunk",
                      tags={"pid": parent_pid + 1, "worker": 1})
        worker.start_ns, worker.end_ns = 1_500, 3_000
        return [parent, worker]

    def test_events_have_per_process_tracks(self):
        pid = os.getpid()
        events = chrome_trace_events(self._spans(pid), parent_pid=pid)
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {pid, pid + 1}
        names = {e["pid"]: e["args"]["name"] for e in meta}
        assert names[pid] == f"magus parent (pid {pid})"
        assert names[pid + 1] == f"magus worker 1 (pid {pid + 1})"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3          # parent + child + worker
        by_name = {e["name"]: e for e in complete}
        assert by_name["magus.power_pass"]["pid"] == pid
        assert by_name["magus.parallel.score_chunk"]["pid"] == pid + 1
        assert by_name["magus.mitigate"]["ts"] == 0.0
        assert by_name["magus.mitigate"]["dur"] == 5.0   # microseconds

    def test_export_writes_valid_json(self, tmp_path):
        out = tmp_path / "trace.json"
        pid = os.getpid()
        payload = export_chrome_trace(str(out), spans=self._spans(pid),
                                      parent_pid=pid)
        assert validate_chrome_trace(payload) == 5
        on_disk = json.loads(out.read_text(encoding="utf-8"))
        assert validate_chrome_trace(on_disk) == 5
        assert on_disk["otherData"]["schema"] == "magus.chrome-trace/1"

    def test_export_defaults_to_tracer_peek(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        span = Span("magus.test")
        span.start_ns, span.end_ns = 1, 2
        tracer.adopt(span)
        payload = export_chrome_trace(str(tmp_path / "t.json"),
                                      tracer=tracer)
        assert validate_chrome_trace(payload) == 2    # metadata + span
        assert tracer.peek(), "export must not drain the tracer"

    @pytest.mark.parametrize("payload", [
        [],                                            # not an object
        {},                                            # no traceEvents
        {"traceEvents": {}},                           # not a list
        {"traceEvents": [{"ph": "B", "name": "x", "pid": 1}]},
        {"traceEvents": [{"ph": "X", "name": 3, "pid": 1,
                          "ts": 0, "dur": 0, "tid": 1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": "one",
                          "ts": 0, "dur": 0, "tid": 1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 1,
                          "ts": -5, "dur": 0, "tid": 1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 1,
                          "ts": 0, "dur": 0}]},        # no tid
        {"traceEvents": [{"ph": "M", "name": "process_name", "pid": 1}]},
    ])
    def test_validator_rejects_malformed(self, payload):
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)


# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_bounds_and_drop_accounting(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("rollout_step", step=i)
        assert len(recorder) == 4
        assert recorder.recorded == 10
        assert recorder.dropped == 6
        retained = recorder.events()
        assert [e["data"]["step"] for e in retained] == [6, 7, 8, 9]
        assert [e["seq"] for e in retained] == [6, 7, 8, 9]
        assert all(e["kind"] == "rollout_step" for e in retained)

    def test_kind_filter(self):
        recorder = FlightRecorder()
        recorder.record("rollout_step", step=0)
        recorder.record("fault_injected", fault="push_failure")
        recorder.record("rollout_step", step=1)
        assert len(recorder.events("rollout_step")) == 2
        assert len(recorder.events("fault_injected")) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_snapshot_schema(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("checkpoint_write", path="x.json")
        snapshot = recorder.snapshot()
        assert snapshot["schema"] == FLIGHT_SCHEMA
        assert snapshot["capacity"] == 8
        assert snapshot["recorded"] == 1
        assert snapshot["dropped"] == 0
        assert snapshot["events"][0]["kind"] == "checkpoint_write"

    def test_flush_exactly_once(self, tmp_path):
        out = tmp_path / "flight.json"
        recorder = FlightRecorder(dump_path=str(out))
        recorder.record("rollout_start", run_id="r1")
        assert recorder.flush() == str(out)
        first = out.read_text(encoding="utf-8")
        # Same content, same path: the second flush is a no-op.
        assert recorder.flush() is None
        assert out.read_text(encoding="utf-8") == first
        # New events re-arm the flush.
        recorder.record("rollout_fallback", reason="aborted")
        assert recorder.flush() == str(out)
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert [e["kind"] for e in payload["events"]] == \
            ["rollout_start", "rollout_fallback"]

    def test_flush_without_target_is_noop(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("rollout_start")
        assert recorder.flush() is None
        explicit = tmp_path / "explicit.json"
        assert recorder.flush(str(explicit)) == str(explicit)
        assert json.loads(explicit.read_text(
            encoding="utf-8"))["schema"] == FLIGHT_SCHEMA

    def test_clear_rearms(self, tmp_path):
        out = tmp_path / "flight.json"
        recorder = FlightRecorder(dump_path=str(out))
        recorder.record("sweep_progress", done=1)
        assert recorder.flush() == str(out)
        recorder.clear()
        assert len(recorder) == 0
        recorder.record("sweep_progress", done=2)
        assert recorder.flush() == str(out)

    def test_null_recorder_noops(self):
        null = NullFlightRecorder()
        null.record("anything", x=1)
        assert len(null) == 0
        assert null.events() == []
        assert null.flush("/nonexistent/never-written.json") is None
        assert null.snapshot()["events"] == []
        assert not null.enabled

    def test_active_recorder_accessors(self):
        assert get_flight_recorder() is NULL_FLIGHT_RECORDER
        recorder = FlightRecorder()
        previous = set_flight_recorder(recorder)
        try:
            assert previous is NULL_FLIGHT_RECORDER
            assert get_flight_recorder() is recorder
        finally:
            set_flight_recorder(previous)
        assert get_flight_recorder() is NULL_FLIGHT_RECORDER
        with use_flight_recorder(recorder) as active:
            assert active is recorder
        assert get_flight_recorder() is NULL_FLIGHT_RECORDER


# ----------------------------------------------------------------------
def _ladder(network, config, sectors, deltas):
    import numpy as np
    out = []
    for sector in sectors:
        spec = network.sector(sector)
        for delta in deltas:
            power = float(np.clip(config.power_dbm(sector) + delta,
                                  spec.min_power_dbm,
                                  spec.max_power_dbm))
            out.append(config.with_power(sector, power))
    return out


class TestParallelTelemetryAcceptance:
    """The PR's acceptance criterion, against the service API."""

    def test_labeled_evaluations_sum_matches_serial_exactly(
            self, toy_network, toy_engine, toy_density, tmp_path):
        base = toy_network.planned_configuration()
        candidates = _ladder(toy_network, base, (0, 1, 2),
                             (-2.0, -1.0, 1.0, 2.0))

        # Serial reference: the engine-evaluation count for this batch.
        with use_registry(MetricsRegistry()) as registry:
            serial = Evaluator(toy_engine, toy_density, _UTILITY,
                               strategy="delta")
            serial.utility_of(base)
            before = registry.counter("magus.engine.evaluations").value
            want = serial.score_candidates(candidates)
            serial_count = registry.counter(
                "magus.engine.evaluations").value - before
        assert serial_count == len(candidates)

        # Parallel run: workers inherit the registry/tracer at fork.
        with use_registry(MetricsRegistry()) as registry:
            trace.enable()
            try:
                _, incumbent = toy_engine.evaluate_with_incumbent(
                    base, toy_density)
                with EvaluationService(toy_engine, toy_density, _UTILITY,
                                       2, min_parallel_batch=2) as service:
                    # Fork under an open parent span — exactly how the
                    # search runs — so worker spans must survive the
                    # inherited stack.
                    with trace.span("magus.tuning"):
                        got = service.score_batch(incumbent, candidates)
                assert got == want
                labeled = {}
                for name in registry.names():
                    metric, label = split_metric_label(name)
                    if (metric == "magus.engine.evaluations"
                            and label is not None):
                        labeled[label] = registry.counter(name).value
                assert labeled, "no per-worker labeled evaluations merged"
                assert sum(labeled.values()) == serial_count
                for label in labeled:
                    tags = dict(part.split("=", 1)
                                for part in label.split(","))
                    assert int(tags["pid"]) != os.getpid()
                    assert int(tags["worker"]) >= 1

                # At least one adopted span per participating worker.
                span_pids = {span.tags.get("pid")
                             for span in trace.peek()
                             if "pid" in span.tags}
                labeled_pids = {int(dict(
                    part.split("=", 1)
                    for part in label.split(","))["pid"])
                    for label in labeled}
                assert labeled_pids <= span_pids

                # Chrome export covers the worker tracks.
                out = tmp_path / "trace.json"
                payload = export_chrome_trace(str(out), tracer=trace)
                validate_chrome_trace(payload)
                event_pids = {e["pid"]
                              for e in payload["traceEvents"]
                              if e["ph"] == "X"}
                assert labeled_pids <= event_pids

                # The run report renders the merged utilization.
                from repro.obs import RunReport
                report = RunReport.from_registry(
                    command="test", registry=registry, tracer=trace)
                rows = report.worker_utilization()
                assert {row["pid"] for row in rows} == labeled_pids
                assert all(row["chunks"] >= 1 for row in rows)
                assert "parallel:" in report.to_table()
            finally:
                trace.disable()
                trace.clear()

    def test_busy_ns_rides_in_payload_not_registry_doublecount(
            self, toy_network, toy_engine, toy_density):
        """Labeled busy_ns entries exist per worker and the unlabeled
        total equals their sum (the service folds payload busy_ns)."""
        base = toy_network.planned_configuration()
        candidates = _ladder(toy_network, base, (0, 1, 2),
                             (-2.0, -1.0, 1.0, 2.0))
        with use_registry(MetricsRegistry()) as registry:
            _, incumbent = toy_engine.evaluate_with_incumbent(
                base, toy_density)
            with EvaluationService(toy_engine, toy_density, _UTILITY,
                                   2, min_parallel_batch=2) as service:
                assert service.score_batch(incumbent,
                                           candidates) is not None
            labeled_busy = 0
            for name in registry.names():
                metric, label = split_metric_label(name)
                if (metric == "magus.parallel.worker_busy_ns"
                        and label is not None):
                    labeled_busy += registry.counter(name).value
            assert labeled_busy > 0
            assert registry.counter(
                "magus.parallel.worker_busy_ns").value == labeled_busy
