"""Tests for the LTE testbed facade, traffic and Figure-2 experiments."""

import math

import pytest

from repro.model.linkrate import LinkAdaptation
from repro.testbed.channel import IndoorChannel
from repro.testbed.enodeb import ENodeB
from repro.testbed.experiment import run_upgrade_experiment
from repro.testbed.testbed import (LTETestbed, build_scenario_one,
                                   build_scenario_two)
from repro.testbed.traffic import TcpModel, run_downlink_sessions
from repro.testbed.ue import UserEquipment


@pytest.fixture
def bed():
    bed, _ = build_scenario_one()
    return bed


class TestTraffic:
    def test_goodput_below_phy(self):
        link = LinkAdaptation()
        rates = run_downlink_sessions({1: 25.0}, {1: 0}, link)
        assert 0 < rates[1] < link.max_rate_bps(25.0)

    def test_cell_sharing(self):
        link = LinkAdaptation()
        solo = run_downlink_sessions({1: 25.0}, {1: 0}, link)[1]
        shared = run_downlink_sessions({1: 25.0, 2: 25.0},
                                       {1: 0, 2: 0}, link)
        assert shared[1] == pytest.approx(solo / 2.0)

    def test_out_of_service_zero(self):
        rates = run_downlink_sessions({1: 25.0, 2: -20.0},
                                      {1: 0}, LinkAdaptation())
        assert rates[2] == 0.0

    def test_tcp_model_ramp(self):
        tcp = TcpModel(header_efficiency=1.0, slow_start_penalty_s=3.0,
                       session_seconds=30.0)
        assert tcp.goodput_bps(30e6) == pytest.approx(30e6 * 0.9)
        assert tcp.goodput_bps(0.0) == 0.0


class TestTestbedFacade:
    def test_attach_all_prefers_strongest(self, bed):
        for ue in bed.ues.values():
            serving = bed._serving[ue.ue_id]
            best = bed.best_cell(ue.ue_id)
            assert serving == best

    def test_offline_cell_invisible(self, bed):
        bed.take_offline(2)
        assert bed.rsrp_dbm(1, 2) == float("-inf")
        assert all(s != 2 for s in bed._serving.values())

    def test_reselect_counts_handover_kinds(self, bed):
        counts = bed.take_offline(2) or bed.reselect()
        # take_offline already reselected; force a power change and count.
        bed.bring_online(2)
        counts = bed.reselect()
        assert set(counts) == {"x2", "s1", "lost"}

    def test_utility_uses_log10_mbps(self, bed):
        rates = bed.measure_throughput()
        expected = sum(math.log10(r / 1e6) for r in rates.values()
                       if r > 0)
        assert bed.utility() == pytest.approx(expected)

    def test_utility_in_paper_ballpark(self, bed):
        """Three UEs at indoor rates: f should be single-digit, like the
        paper's 3.31 / 5.02 readings."""
        assert 0.0 < bed.utility() < 10.0

    def test_apply_configuration_roundtrip(self, bed):
        original = bed.configuration()
        bed.apply_configuration({1: 15, 2: 15})
        assert bed.configuration() == {1: 15, 2: 15}
        bed.apply_configuration(original)
        assert bed.configuration() == original

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            LTETestbed([], [UserEquipment(1, 0.0, 0.0)])


class TestOptimization:
    def test_optimize_improves_or_holds(self, bed):
        before = bed.utility()
        bed.optimize_attenuations([1, 2], level_step=10)
        assert bed.utility() >= before - 1e-9

    def test_optimize_skips_offline(self, bed):
        bed.take_offline(2)
        config = bed.optimize_attenuations([1, 2], level_step=10)
        assert 2 in config          # reported, but untouched by sweep


class TestFig2Experiments:
    def test_scenario_one_shape(self):
        bed, target = build_scenario_one()
        res = run_upgrade_experiment(bed, target)
        # The paper's ordering: f_before > f_after >= f_upgrade.
        assert res.f_before > res.f_after
        assert res.f_after >= res.f_upgrade
        assert 0.0 <= res.recovery <= 1.0

    def test_scenario_two_interference_story(self):
        """Scenario 2's point: with interference, the post-outage
        optimum is NOT simply 'everyone to max power'."""
        bed, target = build_scenario_two()
        res = run_upgrade_experiment(bed, target)
        assert res.f_before > res.f_upgrade
        assert res.recovery > 0.2
        neighbor_levels = [v for k, v in res.c_after.items() if k != target]
        assert any(level > 1 for level in neighbor_levels)

    def test_timeline_consistency(self):
        bed, target = build_scenario_one()
        res = run_upgrade_experiment(bed, target, pre_ticks=2, post_ticks=4)
        tl = res.timeline
        assert tl.times[0] == -2 and tl.times[-1] == 4
        upgrade_idx = tl.times.index(0)
        # Before the upgrade everything sits at f_before.
        for series in (tl.no_tuning, tl.reactive, tl.proactive):
            assert all(v == pytest.approx(res.f_before)
                       for v in series[:upgrade_idx])
        # After: proactive at f_after, no-tuning at f_upgrade,
        # reactive in between and non-decreasing.
        assert tl.proactive[-1] == pytest.approx(res.f_after)
        assert tl.no_tuning[-1] == pytest.approx(res.f_upgrade)
        post = tl.reactive[upgrade_idx:]
        assert all(b >= a - 1e-9 for a, b in zip(post, post[1:]))

    def test_hard_handovers_counted_by_epc(self):
        bed, target = build_scenario_one()
        run_upgrade_experiment(bed, target)
        assert bed.epc.signaling_messages["s1_reattach"] > 0


class TestFullTestbed:
    def test_paper_topology(self):
        from repro.testbed.testbed import build_full_testbed
        bed = build_full_testbed()
        assert len(bed.enodebs) == 4
        assert len(bed.ues) == 10
        # Every UE camps somewhere on the full floor.
        assert all(s is not None for s in bed._serving.values())

    def test_full_floor_upgrade_experiment(self):
        from repro.testbed.testbed import build_full_testbed
        from repro.testbed.experiment import run_upgrade_experiment
        bed = build_full_testbed(seed=1)
        res = run_upgrade_experiment(bed, target_enb=2, level_step=10)
        assert res.f_before >= res.f_after >= res.f_upgrade - 1e-9

    def test_reproducible(self):
        from repro.testbed.testbed import build_full_testbed
        a = build_full_testbed(seed=4)
        b = build_full_testbed(seed=4)
        assert [(u.x, u.y) for u in a.ues.values()] == \
            [(u.x, u.y) for u in b.ues.values()]
