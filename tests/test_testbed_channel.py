"""Unit tests for the testbed channel and attenuator semantics."""

import pytest

from repro.testbed.channel import AttenuatorSpec, IndoorChannel


class TestAttenuator:
    def test_paper_semantics(self):
        """L=1 is maximum power, L=30 minimum, step 1 dB."""
        spec = AttenuatorSpec()
        assert spec.power_dbm(1) == 21.0             # 125 mW
        assert spec.power_dbm(30) == 21.0 - 29.0
        assert spec.power_dbm(2) == spec.power_dbm(1) - 1.0

    def test_level_validation(self):
        spec = AttenuatorSpec()
        with pytest.raises(ValueError):
            spec.power_dbm(0)
        with pytest.raises(ValueError):
            spec.power_dbm(31)

    def test_levels_range(self):
        spec = AttenuatorSpec()
        assert list(spec.levels)[0] == 1
        assert list(spec.levels)[-1] == 30
        assert len(list(spec.levels)) == 30


class TestIndoorChannel:
    def test_loss_grows_with_distance(self):
        ch = IndoorChannel(shadowing_sigma_db=0.0)
        near = ch.path_loss_db(0, (0.0, 0.0), 0, (5.0, 0.0))
        far = ch.path_loss_db(0, (0.0, 0.0), 0, (50.0, 0.0))
        assert far > near

    def test_log_distance_slope(self):
        ch = IndoorChannel(path_loss_exponent=3.0, shadowing_sigma_db=0.0)
        l10 = ch.path_loss_db(0, (0.0, 0.0), 0, (10.0, 0.0))
        l100 = ch.path_loss_db(0, (0.0, 0.0), 0, (100.0, 0.0))
        assert l100 - l10 == pytest.approx(30.0)     # 10 n per decade

    def test_received_power(self):
        ch = IndoorChannel(shadowing_sigma_db=0.0)
        rx = ch.received_power_dbm(21.0, 0, (0.0, 0.0), 0, (10.0, 0.0))
        assert rx == pytest.approx(
            21.0 - ch.path_loss_db(0, (0.0, 0.0), 0, (10.0, 0.0)))

    def test_shadowing_deterministic_per_link(self):
        ch = IndoorChannel(shadowing_sigma_db=4.0, seed=5)
        a = ch.path_loss_db(1, (0.0, 0.0), 2, (10.0, 0.0))
        b = ch.path_loss_db(1, (0.0, 0.0), 2, (10.0, 0.0))
        assert a == b

    def test_shadowing_varies_across_links(self):
        ch = IndoorChannel(shadowing_sigma_db=4.0, seed=5)
        a = ch.path_loss_db(1, (0.0, 0.0), 2, (10.0, 0.0))
        b = ch.path_loss_db(3, (0.0, 0.0), 2, (10.0, 0.0))
        assert a != b

    def test_minimum_distance_clamp(self):
        ch = IndoorChannel(shadowing_sigma_db=0.0)
        at_zero = ch.path_loss_db(0, (0.0, 0.0), 0, (0.0, 0.0))
        at_half = ch.path_loss_db(0, (0.0, 0.0), 0, (0.5, 0.0))
        assert at_zero == at_half

    def test_bad_exponent(self):
        with pytest.raises(ValueError):
            IndoorChannel(path_loss_exponent=0.0)
