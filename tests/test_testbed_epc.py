"""Unit tests for the EPC-lite control-plane state machines."""

import pytest

from repro.testbed.epc import (DEFAULT_QCI, EcmState, EmmState, EpcError,
                               EvolvedPacketCore)


@pytest.fixture
def epc():
    core = EvolvedPacketCore()
    core.provision_subscriber("001010000000001")
    core.provision_subscriber("001010000000002")
    return core


class TestAttachDetach:
    def test_attach_creates_context_and_bearer(self, epc):
        ctx = epc.attach("001010000000001", enb_id=1)
        assert ctx.emm is EmmState.REGISTERED
        assert ctx.ecm is EcmState.CONNECTED
        assert ctx.serving_enb == 1
        assert len(ctx.bearers) == 1
        assert ctx.bearers[0].qci == DEFAULT_QCI
        assert epc.active_sessions == 1

    def test_unknown_imsi_rejected(self, epc):
        with pytest.raises(EpcError, match="unknown to HSS"):
            epc.attach("999990000000000", enb_id=1)

    def test_double_attach_rejected(self, epc):
        epc.attach("001010000000001", enb_id=1)
        with pytest.raises(EpcError, match="already attached"):
            epc.attach("001010000000001", enb_id=2)

    def test_detach_clears_state(self, epc):
        epc.attach("001010000000001", enb_id=1)
        epc.detach("001010000000001")
        ctx = epc.context("001010000000001")
        assert ctx.emm is EmmState.DEREGISTERED
        assert ctx.serving_enb is None
        assert ctx.bearers == []
        assert epc.active_sessions == 0

    def test_reattach_after_detach(self, epc):
        epc.attach("001010000000001", enb_id=1)
        epc.detach("001010000000001")
        ctx = epc.attach("001010000000001", enb_id=2)
        assert ctx.serving_enb == 2

    def test_detach_unattached_rejected(self, epc):
        with pytest.raises(EpcError):
            epc.detach("001010000000001")


class TestHandover:
    def test_x2_keeps_bearers(self, epc):
        epc.attach("001010000000001", enb_id=1)
        bearer_id = epc.context("001010000000001").bearers[0].bearer_id
        epc.x2_handover("001010000000001", target_enb=2)
        ctx = epc.context("001010000000001")
        assert ctx.serving_enb == 2
        assert ctx.bearers[0].bearer_id == bearer_id   # forwarded

    def test_s1_reattach_rebuilds_bearer(self, epc):
        epc.attach("001010000000001", enb_id=1)
        old_bearer = epc.context("001010000000001").bearers[0].bearer_id
        epc.s1_reattach("001010000000001", target_enb=2)
        ctx = epc.context("001010000000001")
        assert ctx.serving_enb == 2
        assert ctx.bearers[0].bearer_id != old_bearer  # new session

    def test_handover_requires_registration(self, epc):
        with pytest.raises(EpcError):
            epc.x2_handover("001010000000001", target_enb=2)


class TestBookkeeping:
    def test_attached_to(self, epc):
        epc.attach("001010000000001", enb_id=1)
        epc.attach("001010000000002", enb_id=1)
        epc.x2_handover("001010000000002", target_enb=2)
        assert epc.attached_to(1) == ["001010000000001"]
        assert epc.attached_to(2) == ["001010000000002"]

    def test_signaling_load_ordering(self, epc):
        """S1 re-attach is heavier than X2 — the premise of the paper's
        seamless-handover preference."""
        epc.attach("001010000000001", enb_id=1)
        base = epc.total_signaling_messages()
        epc.x2_handover("001010000000001", target_enb=2)
        x2_cost = epc.total_signaling_messages() - base
        epc.s1_reattach("001010000000001", target_enb=1)
        s1_cost = epc.total_signaling_messages() - base - x2_cost
        assert s1_cost > x2_cost

    def test_unique_bearer_ids(self, epc):
        epc.attach("001010000000001", enb_id=1)
        epc.attach("001010000000002", enb_id=1)
        b1 = epc.context("001010000000001").bearers[0].bearer_id
        b2 = epc.context("001010000000002").bearers[0].bearer_id
        assert b1 != b2

    def test_context_missing(self, epc):
        with pytest.raises(EpcError):
            epc.context("001010000000009")
