"""Unit tests for greedy tilt tuning."""

import pytest

from repro.core.plan import Parameter
from repro.core.tilt import TiltSearchSettings, tune_tilt


@pytest.fixture
def outage(toy_evaluator, toy_network):
    c_before = toy_network.planned_configuration()
    return c_before.with_offline([1])


class TestTiltSearch:
    def test_improves_or_holds(self, toy_evaluator, toy_network, outage):
        result = tune_tilt(toy_evaluator, toy_network, outage, [1])
        assert result.final_utility >= result.initial_utility

    def test_changes_are_uptilts_on_neighbors(self, toy_evaluator,
                                              toy_network, outage):
        result = tune_tilt(toy_evaluator, toy_network, outage, [1])
        for change in result.changes():
            assert change.parameter is Parameter.TILT
            assert change.sector_id != 1
            assert change.new_value < change.old_value   # uptilt only

    def test_tilts_stay_in_catalogue(self, toy_evaluator, toy_network,
                                     outage):
        result = tune_tilt(toy_evaluator, toy_network, outage, [1])
        for sid in range(toy_network.n_sectors):
            tilt_range = toy_network.sector(sid).tilt_range
            tilt = result.final_config.tilt_deg(sid)
            assert tilt_range.min_deg <= tilt <= tilt_range.max_deg
            assert tilt == tilt_range.clamp(tilt)

    def test_each_step_improves(self, toy_evaluator, toy_network, outage):
        result = tune_tilt(toy_evaluator, toy_network, outage, [1])
        trace = result.utility_trace()
        assert all(b > a for a, b in zip(trace, trace[1:]))

    def test_max_steps_per_sector(self, toy_evaluator, toy_network, outage):
        settings = TiltSearchSettings(max_steps_per_sector=1)
        result = tune_tilt(toy_evaluator, toy_network, outage, [1],
                           settings)
        per_sector = {}
        for change in result.changes():
            per_sector[change.sector_id] = \
                per_sector.get(change.sector_id, 0) + 1
        assert all(v <= 1 for v in per_sector.values())

    def test_downtilt_extension(self, toy_evaluator, toy_network, outage):
        """allow_downtilt may add moves but can never reduce utility."""
        plain = tune_tilt(toy_evaluator, toy_network, outage, [1])
        extended = tune_tilt(toy_evaluator, toy_network, outage, [1],
                             TiltSearchSettings(allow_downtilt=True))
        assert extended.final_utility >= plain.final_utility - 1e-9

    def test_offline_neighbor_skipped(self, toy_evaluator, toy_network):
        c = toy_network.planned_configuration().with_offline([1, 2])
        result = tune_tilt(toy_evaluator, toy_network, c, [1])
        assert all(ch.sector_id != 2 for ch in result.changes())
