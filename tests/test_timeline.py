"""Tests for the wall-clock migration timeline."""

import datetime as dt

import pytest

from repro.core.joint import tune_joint
from repro.core.gradual import gradual_migration
from repro.upgrades.timeline import build_timeline

UPGRADE_AT = dt.datetime(2015, 6, 2, 13, 0)


@pytest.fixture
def gradual(toy_evaluator, toy_network):
    c_before = toy_network.planned_configuration()
    baseline = toy_evaluator.state_of(c_before)
    c_upgrade = c_before.with_offline([1])
    plan = tune_joint(toy_evaluator, toy_network, c_upgrade,
                      baseline, [1])
    return gradual_migration(toy_evaluator, toy_network, c_before,
                             plan.final_config, [1])


class TestBuildTimeline:
    def test_last_entry_is_the_upgrade(self, gradual):
        tl = build_timeline(gradual, UPGRADE_AT)
        assert tl.entries[-1].at == UPGRADE_AT
        assert tl.entries[-1].is_upgrade_instant

    def test_entries_ordered_and_spaced(self, gradual):
        tl = build_timeline(gradual, UPGRADE_AT,
                            step_interval_minutes=10.0)
        times = [e.at for e in tl.entries]
        assert times == sorted(times)
        for a, b in zip(times, times[1:]):
            assert (b - a) == dt.timedelta(minutes=10)

    def test_lead_time_matches_step_count(self, gradual):
        tl = build_timeline(gradual, UPGRADE_AT,
                            step_interval_minutes=10.0)
        expected = dt.timedelta(
            minutes=10.0 * (len(gradual.batches) - 1))
        assert tl.lead_time == expected

    def test_signaling_accounting(self, gradual):
        tl = build_timeline(gradual, UPGRADE_AT)
        for entry, batch in zip(tl.entries, gradual.batches):
            expected = batch.seamless_ues * 4 + batch.hard_ues * 12
            assert entry.signaling_messages == pytest.approx(expected)
        assert tl.total_signaling() == pytest.approx(
            sum(e.signaling_messages for e in tl.entries))

    def test_peak_signaling_rate(self, gradual):
        slow = build_timeline(gradual, UPGRADE_AT,
                              step_interval_minutes=20.0)
        fast = build_timeline(gradual, UPGRADE_AT,
                              step_interval_minutes=5.0)
        # Same bursts spread over longer intervals = lower rate.
        assert slow.peak_signaling_per_minute() < \
            fast.peak_signaling_per_minute()

    def test_describe(self, gradual):
        tl = build_timeline(gradual, UPGRADE_AT)
        text = "\n".join(tl.describe())
        assert "UPGRADE" in text
        assert "migration starts" in text

    def test_bad_interval(self, gradual):
        with pytest.raises(ValueError):
            build_timeline(gradual, UPGRADE_AT, step_interval_minutes=0)
