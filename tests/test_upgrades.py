"""Tests for upgrade scenarios and the end-to-end planner."""

import math

import pytest

from repro.upgrades.planner import UpgradePlanner
from repro.upgrades.scenario import (UpgradeScenario, central_site,
                                     select_targets)


class TestScenarioSelection:
    def test_labels(self):
        assert UpgradeScenario.from_label("a") is \
            UpgradeScenario.SINGLE_SECTOR
        assert UpgradeScenario.from_label("b") is UpgradeScenario.FULL_SITE
        assert UpgradeScenario.from_label("c") is \
            UpgradeScenario.FOUR_CORNERS
        with pytest.raises(ValueError):
            UpgradeScenario.from_label("z")

    def test_central_site_is_nearest_to_center(self, small_area):
        site_id = central_site(small_area)
        cx, cy = small_area.tuning_region.center
        chosen = small_area.network.sites[site_id]
        d_chosen = math.hypot(chosen.x - cx, chosen.y - cy)
        for site in small_area.network.sites.values():
            d = math.hypot(site.x - cx, site.y - cy)
            assert d_chosen <= d + 1e-9

    def test_scenario_a_single_central_sector(self, small_area):
        targets = select_targets(small_area,
                                 UpgradeScenario.SINGLE_SECTOR)
        assert len(targets) == 1
        sector = small_area.network.sector(targets[0])
        assert sector.site_id == central_site(small_area)

    def test_scenario_b_full_site(self, small_area):
        targets = select_targets(small_area, UpgradeScenario.FULL_SITE)
        site = small_area.network.sites[central_site(small_area)]
        assert set(targets) == set(site.sector_ids)

    def test_scenario_c_distinct_sites(self, small_area):
        targets = select_targets(small_area, UpgradeScenario.FOUR_CORNERS)
        sites = {small_area.network.sector(t).site_id for t in targets}
        assert len(sites) == len(targets)
        assert 1 <= len(targets) <= 4

    def test_deterministic(self, small_area):
        a = select_targets(small_area, UpgradeScenario.SINGLE_SECTOR)
        b = select_targets(small_area, UpgradeScenario.SINGLE_SECTOR)
        assert a == b


class TestUpgradePlanner:
    def test_mitigate_without_gradual(self, small_area):
        planner = UpgradePlanner(small_area)
        outcome = planner.mitigate(UpgradeScenario.SINGLE_SECTOR,
                                   tuning="power")
        assert outcome.plan.f_before >= outcome.plan.f_after
        assert outcome.recovery >= 0.0
        assert outcome.gradual is None
        with pytest.raises(ValueError):
            _ = outcome.handover_reduction

    def test_mitigate_with_gradual(self, small_area):
        planner = UpgradePlanner(small_area)
        outcome = planner.mitigate(UpgradeScenario.SINGLE_SECTOR,
                                   tuning="joint", with_gradual=True)
        assert outcome.gradual is not None
        assert outcome.handover_reduction >= 1.0
        text = "\n".join(outcome.describe())
        assert "recovery ratio" in text
        assert "gradual" in text

    def test_explicit_targets_override(self, small_area):
        planner = UpgradePlanner(small_area)
        outcome = planner.mitigate(UpgradeScenario.SINGLE_SECTOR,
                                   tuning="power", target_sectors=[0])
        assert outcome.plan.target_sectors == (0,)

    def test_coverage_utility_planner(self, small_area):
        planner = UpgradePlanner(small_area, utility="coverage")
        outcome = planner.mitigate(UpgradeScenario.SINGLE_SECTOR,
                                   tuning="power")
        assert outcome.plan.utility_name == "coverage"
