"""Unit tests for the utility functions (Formulae 5 and 6)."""

import numpy as np
import pytest

from repro.core.utility import (CoverageUtility, PerformanceUtility,
                                SumRateUtility, available_utilities,
                                get_utility)


class TestPerformanceUtility:
    def test_log_of_positive_rates(self):
        u = PerformanceUtility()
        rates = np.asarray([1e6, 1e7])
        assert np.allclose(u.per_ue(rates), np.log(rates))

    def test_zero_rate_contributes_zero(self):
        u = PerformanceUtility()
        assert u.per_ue(np.asarray([0.0]))[0] == 0.0

    def test_fairness_incentive(self):
        """The log favors raising a poor UE over a rich one by the same
        factor gap the paper cites for proportional fairness."""
        u = PerformanceUtility()
        poor_gain = u.per_ue(np.asarray([2e5]))[0] - \
            u.per_ue(np.asarray([1e5]))[0]
        rich_gain = u.per_ue(np.asarray([2e7 + 1e5]))[0] - \
            u.per_ue(np.asarray([2e7]))[0]
        assert poor_gain > rich_gain * 10

    def test_evaluate_weights_by_density(self, toy_engine, toy_network,
                                         toy_density):
        state = toy_engine.evaluate(toy_network.planned_configuration(),
                                    toy_density)
        u = PerformanceUtility()
        manual = (u.per_ue(state.rate_bps) * state.ue_density).sum()
        assert u.evaluate(state) == pytest.approx(manual)


class TestCoverageUtility:
    def test_binary_values(self):
        u = CoverageUtility()
        vals = u.per_ue(np.asarray([0.0, 1.0, 1e9]))
        assert list(vals) == [0.0, 1.0, 1.0]

    def test_counts_covered_ues(self, toy_engine, toy_network, toy_density):
        state = toy_engine.evaluate(toy_network.planned_configuration(),
                                    toy_density)
        assert CoverageUtility().evaluate(state) == pytest.approx(
            state.covered_ue_count())


class TestSumRate:
    def test_identity(self):
        u = SumRateUtility()
        rates = np.asarray([0.0, 5.0, 7.5])
        assert np.array_equal(u.per_ue(rates), rates)

    def test_no_fairness(self):
        """Sum-rate is indifferent to who gets the bits — the property
        the paper argues against."""
        u = SumRateUtility()
        balanced = u.per_ue(np.asarray([5e6, 5e6])).sum()
        skewed = u.per_ue(np.asarray([1e6, 9e6])).sum()
        assert balanced == skewed


class TestRegistry:
    def test_names(self):
        assert available_utilities() == ["coverage", "performance",
                                         "sum-rate"]

    def test_lookup(self):
        assert isinstance(get_utility("performance"), PerformanceUtility)
        assert isinstance(get_utility("coverage"), CoverageUtility)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown utility"):
            get_utility("throughput")


class TestNonFiniteRateGuards:
    """Dead sectors report zero/NaN/inf rates; utilities must stay
    finite (garbage rates mean "UE not served", never a NaN total)."""

    BAD = np.asarray([0.0, -1.0, np.nan, np.inf, -np.inf])

    def test_performance_treats_garbage_as_unserved(self):
        values = PerformanceUtility().per_ue(self.BAD)
        assert np.array_equal(values, np.zeros(5))

    def test_coverage_treats_garbage_as_uncovered(self):
        values = CoverageUtility().per_ue(self.BAD)
        assert np.array_equal(values, np.zeros(5))

    def test_sum_rate_ignores_garbage(self):
        values = SumRateUtility().per_ue(self.BAD)
        assert np.array_equal(values, np.zeros(5))

    def test_served_ues_unaffected(self):
        rates = np.asarray([np.nan, 2.0, 0.0, np.e])
        values = PerformanceUtility().per_ue(rates)
        assert values[1] == pytest.approx(np.log(2.0))
        assert values[3] == pytest.approx(1.0)

    def test_no_floating_point_warnings(self):
        with np.errstate(all="raise"):
            PerformanceUtility().per_ue(np.asarray([0.0, 1e5, 0.0]))
