"""Tests for the drive-test model-validation tools."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.validation import (DriveTestSample, ValidationReport,
                                       drive_test, validate_against)


@pytest.fixture
def baseline(toy_evaluator, toy_network):
    return toy_evaluator.state_of(toy_network.planned_configuration())


class TestDriveTest:
    def test_sample_count_and_bounds(self, baseline):
        samples = drive_test(baseline, n_samples=200, seed=1)
        assert len(samples) == 200
        for s in samples[:20]:
            assert baseline.grid.region.contains(s.x, s.y)

    def test_noise_free_matches_model(self, baseline):
        samples = drive_test(baseline, n_samples=100,
                             measurement_noise_db=0.0, seed=2)
        report = validate_against(baseline, samples)
        assert report.coverage_agreement == 1.0
        assert report.serving_agreement == 1.0
        assert report.sinr_mae_db == pytest.approx(0.0, abs=1e-9)
        assert report.sinr_rank_correlation == pytest.approx(1.0)

    def test_noise_degrades_mae_not_agreement(self, baseline):
        noisy = drive_test(baseline, n_samples=300,
                           measurement_noise_db=3.0, seed=3)
        report = validate_against(baseline, noisy)
        assert report.coverage_agreement == 1.0   # flags are exact
        assert 1.5 < report.sinr_mae_db < 5.0     # ~E|N(0,3)| = 2.4
        assert abs(report.sinr_bias_db) < 1.0
        assert report.sinr_rank_correlation > 0.7

    def test_wrong_model_scores_worse(self, baseline, toy_evaluator,
                                      toy_network):
        """Validating the outage snapshot against pre-outage samples
        must show disagreement — the report detects model drift."""
        samples = drive_test(baseline, n_samples=300,
                             measurement_noise_db=0.0, seed=4)
        wrong = toy_evaluator.state_of(
            toy_network.planned_configuration().with_offline([1]))
        report = validate_against(wrong, samples)
        assert report.serving_agreement < 1.0

    def test_validation_requires_samples(self, baseline):
        with pytest.raises(ValueError):
            validate_against(baseline, [])
        with pytest.raises(ValueError):
            drive_test(baseline, n_samples=0)

    def test_deterministic_under_seed(self, baseline):
        a = drive_test(baseline, n_samples=50, seed=9)
        b = drive_test(baseline, n_samples=50, seed=9)
        assert a == b

    def test_report_describe(self, baseline):
        samples = drive_test(baseline, n_samples=50, seed=5)
        text = "\n".join(validate_against(baseline, samples).describe())
        assert "coverage agreement" in text
        assert "SINR MAE" in text
